// Command trainmodel trains a performance predictor for a machine and
// container size through the numaplace Engine and writes it as JSON,
// printing its cross-validated accuracy (a single-machine slice of the
// Figure 4 evaluation). SIGINT aborts collection/training promptly.
//
// Usage:
//
//	trainmodel -machine intel -vcpus 24 -out model.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/experiments"
	"repro/internal/mlearn"
	"repro/internal/workloads"
)

func main() {
	machine := flag.String("machine", "intel", "machine model: amd, intel, zen, haswell-cod")
	vcpus := flag.Int("vcpus", 0, "container vCPU count (default: paper value for the machine)")
	out := flag.String("out", "", "write the trained predictor JSON here")
	trees := flag.Int("trees", 100, "random forest size")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, ok := numaplace.MachineByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}
	v := *vcpus
	if v == 0 {
		v = experiments.VCPUsFor(m)
	}

	eng := numaplace.New(m,
		numaplace.WithCollectConfig(numaplace.CollectConfig{Trials: 3}),
		numaplace.WithTrainConfig(numaplace.TrainConfig{
			Seed: 1, Forest: mlearn.ForestConfig{Trees: *trees},
		}),
	)

	ws := append(workloads.Paper(),
		workloads.CorpusFrom(50, 42, []string{"flat", "bw", "lat", "smt-averse", "cache"})...)
	ds, err := eng.Collect(ctx, ws, v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collect:", err)
		os.Exit(1)
	}
	pred, err := eng.Train(ctx, ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	fmt.Printf("%s, %d vCPUs: observe placements #%d and #%d\n", m.Topo.Name, v, pred.Base+1, pred.Probe+1)

	// Training-set accuracy summary, scored in one flat batch: pre-sized
	// feature and prediction blocks, targets from the dataset's cached
	// relative matrix.
	n := len(ds.Workloads)
	xbuf := make([]float64, n*pred.InDim())
	predAll := make([]float64, n*pred.NumPlacements)
	if err := pred.PredictDatasetInto(predAll, xbuf, ds, nil); err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	fmt.Printf("training-set MAPE: %.2f%%\n", mlearn.MAPEFlat(predAll, ds.RelMatrix(pred.Base), nil))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pred.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		fmt.Println("model written to", *out)
	}
}
