// Command packsim runs the Figure 5 packing comparison for one workload on
// one machine through the numaplace Engine: instances per machine and
// performance-goal violations under the four policies.
//
// Usage:
//
//	packsim -machine amd -workload WTbtree
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/experiments"
	"repro/internal/mlearn"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	machine := flag.String("machine", "amd", "machine model: amd or intel")
	workload := flag.String("workload", "WTbtree", "paper workload name")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, ok := numaplace.MachineByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}
	w, ok := numaplace.WorkloadByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	v := experiments.VCPUsFor(m)

	eng := numaplace.New(m,
		numaplace.WithCollectConfig(numaplace.CollectConfig{Trials: 3}),
		numaplace.WithTrainConfig(numaplace.TrainConfig{
			Seed: 1, Forest: mlearn.ForestConfig{Trees: 100},
		}),
	)

	ws := append(workloads.Paper(),
		workloads.CorpusFrom(50, 42, []string{"flat", "bw", "lat", "smt-averse", "cache"})...)
	ds, err := eng.Collect(ctx, ws, v)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := eng.Train(ctx, ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// nil predictor: the experiment picks up the one Train registered.
	exp, err := eng.NewPackingExperiment(ctx, w, v, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s containers (%d vCPUs) on %s\n", w.Name, v, m.Topo.Name)
	tbl := stats.NewTable("goal", "ML", "Conservative", "Aggressive", "Aggressive(Smart)")
	for _, goal := range []float64{0.9, 1.0, 1.1} {
		row := []interface{}{fmt.Sprintf("%.0f%%", goal*100)}
		for _, kind := range []sched.PolicyKind{
			numaplace.PolicyML, numaplace.PolicyConservative,
			numaplace.PolicyAggressive, numaplace.PolicySmartAggressive,
		} {
			r, err := exp.RunCtx(ctx, kind, goal)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			row = append(row, fmt.Sprintf("%d / %.1f%%", r.Instances, r.ViolationPct))
		}
		tbl.Row(row...)
	}
	tbl.Render(os.Stdout)
}
