// Command packsim runs the Figure 5 packing comparison for one workload on
// one machine: instances per machine and performance-goal violations under
// the four policies.
//
// Usage:
//
//	packsim -machine amd -workload WTbtree
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machines"
	"repro/internal/mlearn"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	machine := flag.String("machine", "amd", "machine model: amd or intel")
	workload := flag.String("workload", "WTbtree", "paper workload name")
	flag.Parse()

	var m machines.Machine
	switch *machine {
	case "amd":
		m = machines.AMD()
	case "intel":
		m = machines.Intel()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}
	w, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	v := experiments.VCPUsFor(m)

	ws := append(workloads.Paper(),
		workloads.CorpusFrom(50, 42, []string{"flat", "bw", "lat", "smt-averse", "cache"})...)
	ds, err := core.Collect(m, ws, v, core.CollectConfig{Trials: 3})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pred, err := core.Train(ds, core.TrainConfig{Seed: 1, Forest: mlearn.ForestConfig{Trees: 100}})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exp, err := sched.NewExperiment(m, w, v, pred)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s containers (%d vCPUs) on %s\n", w.Name, v, m.Topo.Name)
	tbl := stats.NewTable("goal", "ML", "Conservative", "Aggressive", "Aggressive(Smart)")
	for _, goal := range []float64{0.9, 1.0, 1.1} {
		row := []interface{}{fmt.Sprintf("%.0f%%", goal*100)}
		for _, kind := range []sched.PolicyKind{sched.ML, sched.Conservative, sched.Aggressive, sched.SmartAggressive} {
			r, err := exp.Run(kind, goal)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			row = append(row, fmt.Sprintf("%d / %.1f%%", r.Instances, r.ViolationPct))
		}
		tbl.Row(row...)
	}
	tbl.Render(os.Stdout)
}
