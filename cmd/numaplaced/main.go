// Command numaplaced serves a numaplace.Cluster over the wire protocol:
// an HTTP/JSON daemon remote callers drive through repro/client (or plain
// curl). On startup it builds one Engine per -machines entry, trains each
// on the paper catalog plus a synthetic corpus, assembles the cluster
// under the chosen routing policy, and listens.
//
// Routes live under /v1 (see DESIGN.md "Wire protocol"): place, release,
// rebalance, drain, resume, heartbeat, missprobe, fail, failover, revive,
// stats, assignments, health/{backend}, healthz, and the events stream
// (Server-Sent Events).
//
// SIGINT/SIGTERM shut the daemon down gracefully: event streams are
// closed, in-flight requests drain within -shutdown-timeout, and the
// process exits 0. Bad flags exit 2 with usage.
//
// Usage:
//
//	numaplaced -listen 127.0.0.1:7070 -machines amd,intel -policy best-predicted
//	numaplaced -listen 127.0.0.1:0 -quick     # ephemeral port, CI training budget
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/mlearn"
	"repro/internal/wire"
	"repro/internal/workloads"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "listen address (host:port; port 0 picks an ephemeral port)")
	machineList := flag.String("machines", "amd,intel", "comma-separated machine models forming the fleet")
	policyName := flag.String("policy", "best-predicted", "routing policy: first-fit, least-loaded or best-predicted")
	vcpus := flag.Int("vcpus", 16, "vCPUs per container the engines are trained for")
	drainBelow := flag.Float64("drain-below", 0.5, "consolidate machines below this utilization during rebalance")
	spread := flag.Bool("spread", false, "spread replicas of a workload across failure domains (racks)")
	eventsBuffer := flag.Int("events-buffer", 1024, "per-subscriber event ring size on /v1/events")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	quick := flag.Bool("quick", false, "reduced training fidelity (CI smoke)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}
	if *vcpus <= 0 || *eventsBuffer <= 0 {
		fmt.Fprintln(os.Stderr, "-vcpus and -events-buffer must be positive")
		flag.Usage()
		os.Exit(2)
	}
	policy, ok := numaplace.ClusterPolicyByName(*policyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, config{
		listen:       *listen,
		machines:     strings.Split(*machineList, ","),
		policy:       policy,
		vcpus:        *vcpus,
		drainBelow:   *drainBelow,
		spread:       *spread,
		eventsBuffer: *eventsBuffer,
		shutdown:     *shutdownTimeout,
		quick:        *quick,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type config struct {
	listen       string
	machines     []string
	policy       numaplace.ClusterPolicy
	vcpus        int
	drainBelow   float64
	spread       bool
	eventsBuffer int
	shutdown     time.Duration
	quick        bool
}

func run(ctx context.Context, cfg config) error {
	trials, trees, corpus := 3, 60, 30
	if cfg.quick {
		trials, trees, corpus = 2, 10, 10
	}

	// Build and train one Engine per machine (same recipe as clustersim:
	// paper catalog + synthetic corpus, machines alternating racks).
	cl := numaplace.NewCluster(numaplace.ClusterConfig{
		Policy: cfg.policy, DrainBelow: cfg.drainBelow, SpreadDomains: cfg.spread,
	})
	for i, mname := range cfg.machines {
		m, ok := numaplace.MachineByName(mname)
		if !ok {
			return fmt.Errorf("unknown machine %q", mname)
		}
		eng := numaplace.New(m,
			numaplace.WithCollectConfig(numaplace.CollectConfig{Trials: trials}),
			numaplace.WithTrainConfig(numaplace.TrainConfig{
				Seed: 1, Forest: mlearn.ForestConfig{Trees: trees},
				SelectionTrees: 4, SelectionFolds: 3,
			}),
		)
		ws := append(workloads.Paper(),
			workloads.CorpusFrom(corpus, 42, []string{"flat", "bw", "lat", "smt-averse", "cache"})...)
		ds, err := eng.Collect(ctx, ws, cfg.vcpus)
		if err != nil {
			return fmt.Errorf("collecting on %s: %w", mname, err)
		}
		if _, err := eng.Train(ctx, ds); err != nil {
			return fmt.Errorf("training on %s: %w", mname, err)
		}
		name := fmt.Sprintf("%s-%d", mname, i)
		if err := cl.Add(name, eng, numaplace.InDomain(fmt.Sprintf("rack-%d", i%2))); err != nil {
			return err
		}
		fmt.Printf("numaplaced: trained %s (%s)\n", name, m.Topo.Name)
	}

	ws := wire.NewServer(cl.Fleet(), wire.Config{EventBuffer: cfg.eventsBuffer})
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", cfg.listen, err)
	}
	srv := &http.Server{Handler: ws}

	// The readiness line load generators and the smoke test poll for.
	fmt.Printf("numaplaced: serving on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: Stop ends the never-returning SSE handlers first
	// (Shutdown waits for active handlers), then Shutdown drains the rest.
	fmt.Println("numaplaced: shutting down")
	ws.Stop()
	sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdown)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("draining in-flight requests: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("numaplaced: bye")
	return nil
}
