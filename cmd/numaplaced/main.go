// Command numaplaced serves a numaplace.Cluster over the wire protocol:
// an HTTP/JSON daemon remote callers drive through repro/client (or plain
// curl). On startup it builds one Engine per -machines entry, trains each
// on the paper catalog plus a synthetic corpus, assembles the cluster
// under the chosen routing policy, and listens.
//
// Routes live under /v1 (see DESIGN.md "Wire protocol"): place, release,
// rebalance, drain, resume, heartbeat, missprobe, fail, failover, revive,
// stats, assignments, health/{backend}, healthz, and the events stream
// (Server-Sent Events).
//
// With -data-dir the daemon is crash-recoverable: every fleet mutation is
// appended to a write-ahead log under the directory before the response
// leaves, and on the next boot the daemon replays the log (plus the newest
// snapshot) into freshly rebuilt engines, so live admissions survive a
// kill -9. A log that fails structural validation refuses the boot with a
// non-zero exit — serving from silently wrong state is worse than not
// serving. GET /v1/log/head reports the durability position; POST
// /v1/snapshot forces a checkpoint.
//
// SIGINT/SIGTERM shut the daemon down gracefully: event streams are
// closed, in-flight requests drain within -shutdown-timeout, the fleet is
// checkpointed, the log is flushed and closed, and the process exits 0.
// Bad flags exit 2 with usage.
//
// Usage:
//
//	numaplaced -listen 127.0.0.1:7070 -machines amd,intel -policy best-predicted
//	numaplaced -listen 127.0.0.1:0 -quick     # ephemeral port, CI training budget
//	numaplaced -listen 127.0.0.1:7070 -data-dir /var/lib/numaplaced -fsync interval
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/mlearn"
	"repro/internal/nperr"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/workloads"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "listen address (host:port; port 0 picks an ephemeral port)")
	machineList := flag.String("machines", "amd,intel", "comma-separated machine models forming the fleet")
	policyName := flag.String("policy", "best-predicted", "routing policy: first-fit, least-loaded or best-predicted")
	vcpus := flag.Int("vcpus", 16, "vCPUs per container the engines are trained for")
	drainBelow := flag.Float64("drain-below", 0.5, "consolidate machines below this utilization during rebalance")
	spread := flag.Bool("spread", false, "spread replicas of a workload across failure domains (racks)")
	eventsBuffer := flag.Int("events-buffer", 1024, "per-subscriber event ring size on /v1/events")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	quick := flag.Bool("quick", false, "reduced training fidelity (CI smoke)")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and snapshots (empty: no persistence)")
	fsync := flag.String("fsync", "always", "log durability policy: always, interval or none (with -data-dir)")
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "flush cadence under -fsync interval")
	snapshotEvery := flag.Duration("snapshot-every", 0, "periodic checkpoint cadence (0: only on shutdown and POST /v1/snapshot)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}
	if *vcpus <= 0 || *eventsBuffer <= 0 {
		fmt.Fprintln(os.Stderr, "-vcpus and -events-buffer must be positive")
		flag.Usage()
		os.Exit(2)
	}
	policy, ok := numaplace.ClusterPolicyByName(*policyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		flag.Usage()
		os.Exit(2)
	}
	fsyncPolicy, ok := wal.PolicyByName(*fsync)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown fsync policy %q\n", *fsync)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, config{
		listen:        *listen,
		machines:      strings.Split(*machineList, ","),
		policy:        policy,
		vcpus:         *vcpus,
		drainBelow:    *drainBelow,
		spread:        *spread,
		eventsBuffer:  *eventsBuffer,
		shutdown:      *shutdownTimeout,
		quick:         *quick,
		dataDir:       *dataDir,
		fsync:         fsyncPolicy,
		fsyncInterval: *fsyncInterval,
		snapshotEvery: *snapshotEvery,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, nperr.ErrLogCorrupt) {
			// Refusing to serve from damaged durable state is deliberate;
			// exit 3 so supervisors can tell "operator must inspect
			// -data-dir" from ordinary startup failures.
			os.Exit(3)
		}
		os.Exit(1)
	}
}

type config struct {
	listen        string
	machines      []string
	policy        numaplace.ClusterPolicy
	vcpus         int
	drainBelow    float64
	spread        bool
	eventsBuffer  int
	shutdown      time.Duration
	quick         bool
	dataDir       string
	fsync         wal.FsyncPolicy
	fsyncInterval time.Duration
	snapshotEvery time.Duration
}

func run(ctx context.Context, cfg config) error {
	trials, trees, corpus := 3, 60, 30
	if cfg.quick {
		trials, trees, corpus = 2, 10, 10
	}

	// Build and train one Engine per machine (same recipe as clustersim:
	// paper catalog + synthetic corpus, machines alternating racks).
	cl := numaplace.NewCluster(numaplace.ClusterConfig{
		Policy: cfg.policy, DrainBelow: cfg.drainBelow, SpreadDomains: cfg.spread,
	})
	for i, mname := range cfg.machines {
		m, ok := numaplace.MachineByName(mname)
		if !ok {
			return fmt.Errorf("unknown machine %q", mname)
		}
		eng := numaplace.New(m,
			numaplace.WithCollectConfig(numaplace.CollectConfig{Trials: trials}),
			numaplace.WithTrainConfig(numaplace.TrainConfig{
				Seed: 1, Forest: mlearn.ForestConfig{Trees: trees},
				SelectionTrees: 4, SelectionFolds: 3,
			}),
		)
		ws := append(workloads.Paper(),
			workloads.CorpusFrom(corpus, 42, []string{"flat", "bw", "lat", "smt-averse", "cache"})...)
		ds, err := eng.Collect(ctx, ws, cfg.vcpus)
		if err != nil {
			return fmt.Errorf("collecting on %s: %w", mname, err)
		}
		if _, err := eng.Train(ctx, ds); err != nil {
			return fmt.Errorf("training on %s: %w", mname, err)
		}
		name := fmt.Sprintf("%s-%d", mname, i)
		if err := cl.Add(name, eng, numaplace.InDomain(fmt.Sprintf("rack-%d", i%2))); err != nil {
			return err
		}
		fmt.Printf("numaplaced: trained %s (%s)\n", name, m.Topo.Name)
	}

	// Recovery happens after training and before serving: the engines are
	// rebuilt deterministically (fixed seeds, same flags), so replaying the
	// log against them reconstructs the pre-crash placements exactly.
	f := cl.Fleet()
	wcfg := wire.Config{EventBuffer: cfg.eventsBuffer}
	var wlog *wal.Log
	recovered := 0
	if cfg.dataDir != "" {
		l, st, recs, err := wal.Open(wal.Options{
			Dir: cfg.dataDir, Fsync: cfg.fsync, Interval: cfg.fsyncInterval,
		})
		if err != nil {
			return fmt.Errorf("opening write-ahead log in %s: %w", cfg.dataDir, err)
		}
		if err := f.Restore(ctx, st, recs, workloads.ByName); err != nil {
			l.Close()
			return fmt.Errorf("replaying write-ahead log in %s: %w", cfg.dataDir, err)
		}
		wlog = l
		recovered = len(f.Assignments())
		f.SetPersister(wlog)
		defer wlog.Close()
		head := wlog.Head()
		fmt.Printf("numaplaced: recovered %d tenants at seq %d (snapshot %d) from %s\n",
			recovered, head.RecoveredSeq, head.SnapshotSeq, cfg.dataDir)
		wcfg.LogHead = func() wire.LogHead {
			h := wlog.Head()
			return wire.LogHead{
				Seq: h.Seq, SnapshotSeq: h.SnapshotSeq, RecoveredSeq: h.RecoveredSeq,
				RecoveredTenants: recovered, Persistent: true,
			}
		}
		wcfg.Snapshot = func() (uint64, error) { return f.Checkpoint() }
	}

	ws := wire.NewServer(f, wcfg)
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", cfg.listen, err)
	}
	srv := &http.Server{Handler: ws}

	// Periodic checkpoints bound the log tail a restart must replay.
	if wlog != nil && cfg.snapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := f.Checkpoint(); err != nil {
						fmt.Fprintf(os.Stderr, "numaplaced: periodic snapshot: %v\n", err)
					}
				}
			}
		}()
	}

	// The readiness line load generators and the smoke test poll for.
	fmt.Printf("numaplaced: serving on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: Stop ends the never-returning SSE handlers first
	// (Shutdown waits for active handlers), then Shutdown drains the rest.
	// Only after the last request has drained is the fleet checkpointed and
	// the log flushed and closed — a mutation racing the final snapshot
	// would otherwise be stranded in the buffer.
	fmt.Println("numaplaced: shutting down")
	ws.Stop()
	sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdown)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("draining in-flight requests: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if wlog != nil {
		if seq, err := f.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "numaplaced: final snapshot: %v (log retained)\n", err)
		} else {
			fmt.Printf("numaplaced: checkpointed at seq %d\n", seq)
		}
		if err := wlog.Close(); err != nil {
			return fmt.Errorf("closing write-ahead log: %w", err)
		}
	}
	fmt.Println("numaplaced: bye")
	return nil
}
