// Command migtry prints the simulated Table 2 next to the paper's values,
// for calibration of the migration constants.
package main

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/migrate"
)

var paper = map[string][2]float64{ // fast, default linux (seconds)
	"BLAST": {3.0, 5.9}, "canneal": {0.3, 3.9}, "fluidanimate": {0.3, 2.3},
	"freqmine": {0.3, 4.2}, "gcc": {0.3, 2.8}, "kmeans": {1.5, 6.5},
	"pca": {2.8, 10.0}, "postgres-tpch": {5.8, 117.1}, "postgres-tpcc": {14.9, 431.0},
	"spark-cc": {3.7, 139.9}, "spark-pr-lj": {3.8, 137.0}, "streamcluster": {0.1, 0.4},
	"swaptions": {0.1, 0.0}, "ft.C": {1.3, 19.4}, "dc.B": {5.4, 51.7},
	"wc": {3.4, 19.5}, "wr": {3.6, 18.9}, "WTbtree": {6.3, 43.8},
}

func main() {
	ctx := context.Background()
	eng := numaplace.New(numaplace.AMD())
	fmt.Printf("%-14s %8s %8s | %8s %8s | %8s\n", "workload", "fast", "paper", "linux", "paper", "ratio")
	for _, w := range numaplace.PaperWorkloads() {
		p := numaplace.MigrationProfileFor(w, 16)
		fast, err := eng.Migrate(ctx, p, numaplace.MigrateFast, migrate.Config{})
		if err != nil {
			panic(err)
		}
		linux, err := eng.Migrate(ctx, p, numaplace.MigrateDefaultLinux, migrate.Config{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %8.1f %8.1f | %8.1f %8.1f | %8.1f\n",
			w.Name, fast.Seconds, paper[w.Name][0], linux.Seconds, paper[w.Name][1],
			linux.Seconds/fast.Seconds)
	}
	wt, _ := numaplace.WorkloadByName("WTbtree")
	th, _ := eng.Migrate(ctx, numaplace.MigrationProfileFor(wt, 16), numaplace.MigrateThrottled, migrate.Config{})
	fmt.Printf("throttled WTbtree: %.1fs overhead %.1f%% (paper: 60s, 3-6%%)\n", th.Seconds, th.OverheadPct)
}
