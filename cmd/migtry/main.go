// Command migtry prints the simulated Table 2 next to the paper's values,
// for calibration of the migration constants.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/migrate"
)

var paper = map[string][2]float64{ // fast, default linux (seconds)
	"BLAST": {3.0, 5.9}, "canneal": {0.3, 3.9}, "fluidanimate": {0.3, 2.3},
	"freqmine": {0.3, 4.2}, "gcc": {0.3, 2.8}, "kmeans": {1.5, 6.5},
	"pca": {2.8, 10.0}, "postgres-tpch": {5.8, 117.1}, "postgres-tpcc": {14.9, 431.0},
	"spark-cc": {3.7, 139.9}, "spark-pr-lj": {3.8, 137.0}, "streamcluster": {0.1, 0.4},
	"swaptions": {0.1, 0.0}, "ft.C": {1.3, 19.4}, "dc.B": {5.4, 51.7},
	"wc": {3.4, 19.5}, "wr": {3.6, 18.9}, "WTbtree": {6.3, 43.8},
}

func main() {
	vcpus := flag.Int("vcpus", 16, "vCPUs per migrated container")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}
	if *vcpus <= 0 {
		fmt.Fprintln(os.Stderr, "-vcpus must be positive")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *vcpus); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ctx context.Context, vcpus int) error {
	eng := numaplace.New(numaplace.AMD())
	fmt.Printf("%-14s %8s %8s | %8s %8s | %8s\n", "workload", "fast", "paper", "linux", "paper", "ratio")
	for _, w := range numaplace.PaperWorkloads() {
		p := numaplace.MigrationProfileFor(w, vcpus)
		fast, err := eng.Migrate(ctx, p, numaplace.MigrateFast, migrate.Config{})
		if err != nil {
			return fmt.Errorf("fast migration of %s: %w", w.Name, err)
		}
		linux, err := eng.Migrate(ctx, p, numaplace.MigrateDefaultLinux, migrate.Config{})
		if err != nil {
			return fmt.Errorf("default-linux migration of %s: %w", w.Name, err)
		}
		fmt.Printf("%-14s %8.1f %8.1f | %8.1f %8.1f | %8.1f\n",
			w.Name, fast.Seconds, paper[w.Name][0], linux.Seconds, paper[w.Name][1],
			linux.Seconds/fast.Seconds)
	}
	wt, ok := numaplace.WorkloadByName("WTbtree")
	if !ok {
		return fmt.Errorf("paper catalog missing WTbtree")
	}
	th, err := eng.Migrate(ctx, numaplace.MigrationProfileFor(wt, vcpus), numaplace.MigrateThrottled, migrate.Config{})
	if err != nil {
		return fmt.Errorf("throttled migration of WTbtree: %w", err)
	}
	fmt.Printf("throttled WTbtree: %.1fs overhead %.1f%% (paper: 60s, 3-6%%)\n", th.Seconds, th.OverheadPct)
	return nil
}
