// Command migsim simulates container memory migration (Table 2) for one
// workload under all three mechanisms.
//
// Usage:
//
//	migsim -workload postgres-tpcc
//	migsim -all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/experiments"
	"repro/internal/migrate"
)

func main() {
	workload := flag.String("workload", "WTbtree", "paper workload name")
	all := flag.Bool("all", false, "print the full Table 2")
	workers := flag.Int("workers", 0, "fast-migration worker threads (0 = default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *all {
		if _, err := experiments.Table2(ctx, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	w, ok := numaplace.WorkloadByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	eng := numaplace.New(numaplace.AMD())
	p := numaplace.MigrationProfileFor(w, 16)
	cfg := migrate.Config{Workers: *workers}
	fmt.Printf("%s: %.1f GB (%.1f GB page cache), %d tasks\n", w.Name, w.MemoryGB, p.PageCacheGB, p.Tasks)
	for _, mech := range []migrate.Mechanism{migrate.Fast, migrate.DefaultLinux, migrate.Throttled} {
		r, err := eng.Migrate(ctx, p, mech, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-14s %7.1f s, moved %5.1f GB (%.1f GB page cache), overhead %.0f%%\n",
			mech, r.Seconds, r.MovedGB, r.PageCacheGB, r.OverheadPct)
	}
}
