// Command paperrepro regenerates every table and figure of the paper's
// evaluation on the simulated machines and prints them in order. The run
// is cancellable: SIGINT/SIGTERM aborts the in-flight experiment promptly
// via context cancellation.
//
// Usage:
//
//	paperrepro            # everything at paper fidelity
//	paperrepro -quick     # low-fidelity smoke run
//	paperrepro -only fig4 # one experiment: table1, counts, fig1, fig3,
//	                      # fig4, fig5, table2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/machines"
)

func main() {
	quick := flag.Bool("quick", false, "low-fidelity smoke run")
	only := flag.String("only", "", "run a single experiment")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.Config{}
	if *quick {
		cfg = experiments.Quick()
	}
	w := os.Stdout

	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	run("table1", func() error { return experiments.Table1(ctx, w) })
	run("counts", func() error { _, err := experiments.PlacementCounts(ctx, w); return err })
	run("fig1", func() error { _, err := experiments.Figure1(ctx, w); return err })
	run("fig3", func() error { _, err := experiments.Figure3(ctx, w, cfg); return err })
	run("fig4", func() error {
		for _, m := range []machines.Machine{machines.AMD(), machines.Intel()} {
			if _, err := experiments.Figure4(ctx, w, m, cfg); err != nil {
				return err
			}
		}
		return nil
	})
	run("fig5", func() error {
		for _, m := range []machines.Machine{machines.AMD(), machines.Intel()} {
			if _, err := experiments.Figure5(ctx, w, m, cfg); err != nil {
				return err
			}
		}
		return nil
	})
	run("table2", func() error { _, err := experiments.Table2(ctx, w); return err })
}
