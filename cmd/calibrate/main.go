// Command calibrate searches for AMD interconnect link bandwidths that
// reproduce the placement facts published in the paper (§4): exactly 13
// important placements for 16 vCPUs, composed of two 8-node, eight 4-node
// and three 2-node placements; {2,3,4,5} the best 4-node set; the
// {0,2,4,6}+{1,3,5,7} packing surviving; {0,1,4,5}+{2,3,6,7} filtered; and
// an 8-node aggregate bandwidth of 35000 MB/s.
//
// The link *structure* is fixed (a twisted ladder: intra-package links plus
// an even-die clique and an odd-die clique, so every even-odd cross-package
// pair is two hops, matching the paper's 0-5 and 3-6 examples). Intra-
// package links fall into three measured bandwidth classes — that is what
// produces the paper's three 2-node placements. The search is over
// bandwidth values on a 100 MB/s grid; it derived the constants in
// internal/machines and is kept as a maintenance tool for porting the
// reconstruction to other link structures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/concern"
	"repro/internal/xrand"
	"repro/internal/interconnect"
	"repro/internal/machines"
	"repro/internal/placement"
	"repro/internal/topology"
)

type params struct {
	wa int64 // intra-package links 0-1 and 6-7 (fastest class)
	wb int64 // intra-package link 2-3
	wc int64 // intra-package link 4-5
	// Even-die clique.
	e02, e04, e06, e24, e26, e46 int64
	// Odd-die clique.
	o13, o15, o17, o35, o37, o57 int64
}

func (p params) graph() *interconnect.Graph {
	g := interconnect.NewGraph(8)
	type link struct {
		a, b topology.NodeID
		bw   int64
	}
	for _, l := range []link{
		{0, 1, p.wa}, {6, 7, p.wa}, {2, 3, p.wb}, {4, 5, p.wc},
		{0, 2, p.e02}, {0, 4, p.e04}, {0, 6, p.e06},
		{2, 4, p.e24}, {2, 6, p.e26}, {4, 6, p.e46},
		{1, 3, p.o13}, {1, 5, p.o15}, {1, 7, p.o17},
		{3, 5, p.o35}, {3, 7, p.o37}, {5, 7, p.o57},
	} {
		g.AddLink(l.a, l.b, l.bw)
	}
	return g
}

// check runs the placement pipeline for the candidate graph and reports
// whether all paper facts hold; the second return is a failure reason.
// exactTotal additionally requires the 8-node aggregate to be 35000 MB/s.
func check(g *interconnect.Graph, exactTotal bool) (bool, string) {
	m := machines.AMD()
	m.IC = g
	spec := concern.FromMachine(m)
	imps, err := placement.Enumerate(spec, 16)
	if err != nil {
		return false, err.Error()
	}
	byNodes := map[int]int{}
	for _, p := range imps {
		byNodes[p.Vec.Node]++
	}
	if n := byNodes[2]; n != 3 {
		return false, fmt.Sprintf("2-node count %d", n)
	}
	if n := byNodes[4]; n != 8 {
		return false, fmt.Sprintf("4-node count %d", n)
	}
	if len(imps) != 13 {
		return false, fmt.Sprintf("count %d composition %v", len(imps), byNodes)
	}
	best4 := topology.NewNodeSet(2, 3, 4, 5)
	evens := topology.NewNodeSet(0, 2, 4, 6)
	odds := topology.NewNodeSet(1, 3, 5, 7)
	comp := topology.NewNodeSet(0, 1, 6, 7)
	bad1 := topology.NewNodeSet(0, 1, 4, 5)
	bad2 := topology.NewNodeSet(2, 3, 6, 7)
	sets := map[topology.NodeSet]bool{}
	var maxIC int64
	for _, p := range imps {
		if p.Vec.Node == 4 {
			sets[p.Nodes] = true
			if ic := p.Vec.Pareto[0]; ic > maxIC {
				maxIC = ic
			}
		}
	}
	if !sets[best4] {
		return false, "missing {2,3,4,5}"
	}
	if !sets[evens] || !sets[odds] {
		return false, "missing evens/odds"
	}
	if !sets[comp] {
		return false, "missing {0,1,6,7}"
	}
	if sets[bad1] || sets[bad2] {
		return false, "{0,1,4,5} or {2,3,6,7} survived"
	}
	if g.Measure(best4) != maxIC {
		return false, "best 4-node set is not {2,3,4,5}"
	}
	if total := g.Measure(topology.FullNodeSet(8)); exactTotal && total != 35000 {
		return false, fmt.Sprintf("total %d != 35000", total)
	}
	return true, ""
}

// fields returns pointers to every tunable parameter, for local search.
func (p *params) fields() []*int64 {
	return []*int64{
		&p.wa, &p.wb, &p.wc,
		&p.e02, &p.e04, &p.e06, &p.e24, &p.e26, &p.e46,
		&p.o13, &p.o15, &p.o17, &p.o35, &p.o37, &p.o57,
	}
}

// tuneTotal hill-climbs single-parameter adjustments until the 8-node
// aggregate is exactly 35000 MB/s while every structural fact still holds.
func tuneTotal(p params) (params, bool) {
	// First try a global rescale toward the target: structural facts are
	// (approximately) scale-invariant, so this usually lands close without
	// breaking them.
	if total := p.graph().Measure(topology.FullNodeSet(8)); total != 35000 {
		q := p
		for _, f := range q.fields() {
			*f = (*f*35000/total + 12) / 25 * 25
		}
		if ok, _ := check(q.graph(), false); ok {
			p = q
		}
	}
	deltas := []int64{-1000, -500, -200, -100, -50, -25, -10, -5, -2, -1, 1, 2, 5, 10, 25, 50, 100, 200, 500, 1000}
	for round := 0; round < 12; round++ {
		total := p.graph().Measure(topology.FullNodeSet(8))
		if total == 35000 {
			return p, true
		}
		improved := false
		for _, f := range p.fields() {
			orig := *f
			for _, delta := range deltas {
				*f = orig + delta
				if *f <= 0 {
					continue
				}
				g := p.graph()
				if ok, _ := check(g, false); !ok {
					continue
				}
				t := g.Measure(topology.FullNodeSet(8))
				if abs64(t-35000) < abs64(total-35000) {
					total = t
					improved = true
					orig = *f
				}
			}
			*f = orig
		}
		if !improved {
			return p, false
		}
	}
	return p, p.graph().Measure(topology.FullNodeSet(8)) == 35000
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [debug]\n", os.Args[0])
		fmt.Fprintln(os.Stderr, "  debug: report the checked-in parameter set instead of searching")
	}
	flag.Parse()
	if flag.NArg() > 1 || (flag.NArg() == 1 && flag.Arg(0) != "debug") {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		p := params{wa: 4200, wb: 3400, wc: 3700,
			e02: 3000, e04: 2500, e06: 1200, e24: 3200, e26: 2600, e46: 2900,
			o13: 2800, o15: 2400, o17: 1000, o35: 3100, o37: 2300, o57: 3000}
		ok, why := check(p.graph(), false)
		fmt.Println("check:", ok, why)
		m := machines.AMD()
		m.IC = p.graph()
		spec := concern.FromMachine(m)
		nodeScores := spec.Node.FeasibleScores(16)
		packs := placement.FilterPackings(spec, placement.GenPackings(nodeScores, placement.AllNodes(spec)))
		fmt.Println("surviving packings:")
		for _, pk := range packs {
			fmt.Print("  ", pk, " ICs:")
			for _, part := range pk {
				fmt.Print(" ", m.IC.Measure(part))
			}
			fmt.Println()
		}
		report(p)
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rng := xrand.New(2)
	grid := func(lo, hi int64) int64 { return lo + 50*rng.Int63n((hi-lo)/50+1) }
	miss := map[string]int{}
	for iter := 0; iter < 500_000; iter++ {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "cancelled after %d iters; failure histogram: %v\n", iter, miss)
			os.Exit(130)
		}
		var p params
		p.wa = 2400
		p.wb = grid(1950, 2350)
		p.wc = grid(1950, 2350)
		if p.wb == p.wc || p.wb == p.wa || p.wc == p.wa {
			continue // three distinct 2-node scores needed
		}
		// All inter-package links stay below the weakest intra link so the
		// all-intra pairing dominates every other (2,2,2,2) packing.
		capBW := p.wb
		if p.wc < capBW {
			capBW = p.wc
		}
		capBW -= 100
		g := func(lo, hi int64) int64 {
			if hi > capBW {
				hi = capBW
			}
			if lo > hi {
				lo = hi
			}
			return grid(lo, hi)
		}
		p.e24 = g(1700, 2100) // feeds the best 4-node set {2,3,4,5}
		p.o35 = g(1700, 2100)
		p.e02, p.e46 = g(1350, 1900), g(1350, 1900)
		p.e04, p.e26 = g(1350, 1900), g(1350, 1900)
		p.e06 = g(450, 900)
		p.o13, p.o57 = g(1350, 1900), g(1350, 1900)
		p.o15, p.o37 = g(1350, 1900), g(1350, 1900)
		p.o17 = g(450, 900)
		ok, why := check(p.graph(), false)
		if !ok {
			miss[why]++
			if iter%100_000 == 99_999 {
				fmt.Printf("iter %d, failures so far: %v\n", iter+1, miss)
			}
			continue
		}
		tuned, exact := tuneTotal(p)
		if !exact {
			miss["total-stuck"]++
			fmt.Printf("stuck at total %d: %+v\n", tuned.graph().Measure(topology.FullNodeSet(8)), tuned)
			continue
		}
		fmt.Printf("FOUND after %d iters: %+v\n", iter, tuned)
		report(tuned)
		return
	}
	fmt.Fprintln(os.Stderr, "no candidate found; failure histogram:", miss)
	os.Exit(1)
}

func report(p params) {
	m := machines.AMD()
	m.IC = p.graph()
	spec := concern.FromMachine(m)
	imps, _ := placement.Enumerate(spec, 16)
	for _, ip := range imps {
		fmt.Println(" ", ip)
	}
}
