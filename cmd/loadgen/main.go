// Command loadgen drives concurrent container admissions against a live
// numaplaced daemon through the typed client and reports what the wire can
// sustain: rejection rate, place-latency percentiles (p50/p90/p99/p999)
// and event-feed accounting (frames received, frames the daemon dropped
// for this subscriber).
//
// Workers run a closed loop: place one container (workload drawn from the
// paper catalog by a per-worker xrand stream), hold it for an
// exponentially distributed time, release it, optionally think, repeat —
// the same arrival shapes internal/workloads scenarios use, but in wall
// time against a real socket. The run is seeded (-seed) so the request
// mix is reproducible; wall-clock latencies of course are not.
//
// With -rate the generator switches to an open loop: arrivals fire at the
// given rate on a fixed schedule regardless of completions (each in its
// own goroutine), so a daemon slower than the offered load accumulates
// in-flight requests and its latency tail grows without bound instead of
// being hidden by closed-loop self-throttling — the honest way to probe a
// throughput ceiling. -c is ignored in this mode.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:7070 -n 20000 -c 32
//	loadgen -addr http://127.0.0.1:7070 -n 50000 -rate 5000   # open loop
//	loadgen -addr http://127.0.0.1:7070 -quick -json   # CI smoke, one JSON line
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/nperr"
	"repro/internal/wire"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7070", "daemon base URL")
	n := flag.Int("n", 20000, "total admission attempts across all workers")
	c := flag.Int("c", 16, "concurrent workers (closed loop)")
	vcpus := flag.Int("vcpus", 16, "vCPUs per container")
	seed := flag.Uint64("seed", 1, "request-mix seed (workload draws, hold times)")
	hold := flag.Duration("hold", 2*time.Millisecond, "mean container hold time before release")
	think := flag.Duration("think", 0, "mean per-worker think time between iterations (0 = none)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in placements/sec (0 = closed loop with -c workers)")
	wait := flag.Duration("wait", 60*time.Second, "how long to wait for the daemon to become ready")
	jsonOut := flag.Bool("json", false, "emit one JSON result line instead of the human report")
	quick := flag.Bool("quick", false, "small smoke run (-n 400 -c 4) for CI")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}
	if *quick {
		if !flagSet("n") {
			*n = 400
		}
		if !flagSet("c") {
			*c = 4
		}
		// Holds just add sleep-wakeup scheduler noise to a smoke run.
		if !flagSet("hold") {
			*hold = 0
		}
	}
	if *n <= 0 || *c <= 0 || *vcpus <= 0 || *hold < 0 || *think < 0 || *rate < 0 {
		fmt.Fprintln(os.Stderr, "-n, -c and -vcpus must be positive; -hold, -think and -rate non-negative")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *addr, *n, *c, *vcpus, *seed, *hold, *think, *rate, *wait, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// result is the -json output schema (and the bench.sh parse surface).
type result struct {
	N             int     `json:"n"`
	Workers       int     `json:"workers"`
	Admitted      int64   `json:"admitted"`
	Rejected      int64   `json:"rejected"`
	RejectionRate float64 `json:"rejection_rate"`
	Errors        int64   `json:"errors"`
	DurationNs    int64   `json:"duration_ns"`
	Throughput    float64 `json:"throughput_rps"`
	P50Ns         int64   `json:"p50_ns"`
	P90Ns         int64   `json:"p90_ns"`
	P99Ns         int64   `json:"p99_ns"`
	P999Ns        int64   `json:"p999_ns"`
	MaxNs         int64   `json:"max_ns"`
	EventsSeen    int64   `json:"events_seen"`
	EventsDropped uint64  `json:"events_dropped"`
	// Durability posture of the daemon under test, read from /v1/log/head
	// at readiness: whether it persists at all, what boot-time recovery
	// replayed, and how many tenants it woke up with. walsmoke diffs
	// RecoveredTenants/RecoveredSeq across a kill -9 restart.
	Persistent       bool   `json:"persistent"`
	RecoveredSeq     uint64 `json:"recovered_seq"`
	RecoveredTenants int    `json:"recovered_tenants"`
	LogSeq           uint64 `json:"log_seq"`
}

func run(ctx context.Context, addr string, n, workers, vcpus int, seed uint64,
	hold, think time.Duration, rate float64, wait time.Duration, jsonOut bool) error {
	// Rejections must surface as rejections, not retried into admissions:
	// the measuring client never retries.
	c := client.New(addr, client.WithRetries(0))

	// Readiness: the daemon trains engines before listening answers.
	deadline := time.Now().Add(wait)
	for {
		if err := c.Healthz(ctx); err == nil {
			break
		} else if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not ready after %s: %w", addr, wait, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Durability metadata: which sequence the daemon recovered to and how
	// many tenants it woke up with. Best-effort against older daemons —
	// the endpoint always exists on current ones, persistent=false when
	// the daemon runs without -data-dir.
	var head *wire.LogHead
	if h, err := c.LogHead(ctx); err == nil {
		head = h
	}

	// Event watcher: counts every frame this subscriber sees and every
	// frame the daemon says it dropped for us (the "dropped" frames).
	var eventsSeen int64
	var eventsDropped uint64
	es, err := c.Events(ctx)
	if err != nil {
		return fmt.Errorf("opening event stream: %w", err)
	}
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			ev, err := es.Next()
			if err != nil {
				return
			}
			if ev.Type == "dropped" {
				atomic.AddUint64(&eventsDropped, ev.Dropped)
				continue
			}
			atomic.AddInt64(&eventsSeen, 1)
		}
	}()

	catalog := workloads.Paper()
	var (
		admitted, rejected, errCount int64
		attempts                     int64
		mu                           sync.Mutex
		latencies                    []time.Duration
		firstErr                     error
	)
	start := time.Now()
	var wg sync.WaitGroup
	if rate > 0 {
		// Open loop: arrivals fire on a fixed schedule derived from -rate,
		// each handled in its own goroutine, so slow responses never slow
		// the arrival process down. Workload and hold draws happen in the
		// pacing goroutine from the single seeded stream, keeping the
		// request mix as reproducible as the closed loop's.
		rng := xrand.New(seed)
		exp := func(mean time.Duration) time.Duration {
			if mean <= 0 {
				return 0
			}
			return time.Duration(-float64(mean) * math.Log(1-rng.Float64()))
		}
		interval := time.Duration(float64(time.Second) / rate)
		next := time.Now()
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if d := time.Until(next); d > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(d):
				}
			}
			next = next.Add(interval)
			w := catalog[rng.Intn(len(catalog))]
			holdFor := exp(hold)
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				pr, err := c.Place(ctx, w.Name, vcpus)
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
				switch {
				case err == nil:
					atomic.AddInt64(&admitted, 1)
					if holdFor > 0 {
						select {
						case <-ctx.Done():
						case <-time.After(holdFor):
						}
					}
					if err := c.Release(ctx, pr.ID); err != nil && ctx.Err() == nil {
						atomic.AddInt64(&errCount, 1)
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("release %d: %w", pr.ID, err)
						}
						mu.Unlock()
					}
				case errors.Is(err, nperr.ErrFleetFull) || errors.Is(err, nperr.ErrNoHealthyBackend):
					atomic.AddInt64(&rejected, 1)
				default:
					if ctx.Err() != nil {
						return
					}
					atomic.AddInt64(&errCount, 1)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("place: %w", err)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		workers = 0 // reported: no closed-loop workers drove this run
	}
	for w := 0; rate == 0 && w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := xrand.New(xrand.Mix(seed, uint64(worker)))
			exp := func(mean time.Duration) time.Duration {
				if mean <= 0 {
					return 0
				}
				return time.Duration(-float64(mean) * math.Log(1-rng.Float64()))
			}
			local := make([]time.Duration, 0, n/workers+1)
			for atomic.AddInt64(&attempts, 1) <= int64(n) {
				if ctx.Err() != nil {
					break
				}
				w := catalog[rng.Intn(len(catalog))]
				t0 := time.Now()
				pr, err := c.Place(ctx, w.Name, vcpus)
				local = append(local, time.Since(t0))
				switch {
				case err == nil:
					atomic.AddInt64(&admitted, 1)
					if d := exp(hold); d > 0 {
						select {
						case <-ctx.Done():
						case <-time.After(d):
						}
					}
					if err := c.Release(ctx, pr.ID); err != nil && ctx.Err() == nil {
						atomic.AddInt64(&errCount, 1)
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("release %d: %w", pr.ID, err)
						}
						mu.Unlock()
					}
				case errors.Is(err, nperr.ErrFleetFull) || errors.Is(err, nperr.ErrNoHealthyBackend):
					atomic.AddInt64(&rejected, 1)
				default:
					if ctx.Err() != nil {
						break
					}
					atomic.AddInt64(&errCount, 1)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("place: %w", err)
					}
					mu.Unlock()
				}
				if d := exp(think); d > 0 {
					select {
					case <-ctx.Done():
					case <-time.After(d):
					}
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Let the event tail land, then close the stream.
	time.Sleep(50 * time.Millisecond)
	es.Close()
	<-watcherDone

	if ctx.Err() != nil {
		return fmt.Errorf("interrupted: %w", ctx.Err())
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	total := admitted + rejected
	res := result{
		N:             n,
		Workers:       workers,
		Admitted:      admitted,
		Rejected:      rejected,
		Errors:        errCount,
		DurationNs:    elapsed.Nanoseconds(),
		P50Ns:         pct(0.50).Nanoseconds(),
		P90Ns:         pct(0.90).Nanoseconds(),
		P99Ns:         pct(0.99).Nanoseconds(),
		P999Ns:        pct(0.999).Nanoseconds(),
		EventsSeen:    atomic.LoadInt64(&eventsSeen),
		EventsDropped: atomic.LoadUint64(&eventsDropped),
	}
	if head != nil {
		res.Persistent = head.Persistent
		res.RecoveredSeq = head.RecoveredSeq
		res.RecoveredTenants = head.RecoveredTenants
		// Re-read at the end so LogSeq reflects the run's own writes.
		if h, err := c.LogHead(ctx); err == nil {
			res.LogSeq = h.Seq
		} else {
			res.LogSeq = head.Seq
		}
	}
	if len(latencies) > 0 {
		res.MaxNs = latencies[len(latencies)-1].Nanoseconds()
	}
	if total > 0 {
		res.RejectionRate = float64(rejected) / float64(total)
	}
	if elapsed > 0 {
		res.Throughput = float64(len(latencies)) / elapsed.Seconds()
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		report(os.Stdout, res)
	}
	if firstErr != nil {
		return fmt.Errorf("%d request errors, first: %w", errCount, firstErr)
	}
	return nil
}

func report(w io.Writer, r result) {
	fmt.Fprintf(w, "loadgen: %d attempts, %d workers, %.2fs\n",
		r.N, r.Workers, time.Duration(r.DurationNs).Seconds())
	fmt.Fprintf(w, "admitted   %8d\n", r.Admitted)
	fmt.Fprintf(w, "rejected   %8d  (%.1f%% rejection rate)\n", r.Rejected, 100*r.RejectionRate)
	fmt.Fprintf(w, "errors     %8d\n", r.Errors)
	fmt.Fprintf(w, "throughput %10.1f place/s\n", r.Throughput)
	fmt.Fprintf(w, "place latency: p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		time.Duration(r.P50Ns), time.Duration(r.P90Ns), time.Duration(r.P99Ns),
		time.Duration(r.P999Ns), time.Duration(r.MaxNs))
	fmt.Fprintf(w, "events: %d seen, %d dropped\n", r.EventsSeen, r.EventsDropped)
	if r.Persistent {
		fmt.Fprintf(w, "durability: log seq %d (daemon recovered %d tenants at seq %d)\n",
			r.LogSeq, r.RecoveredTenants, r.RecoveredSeq)
	}
}
