// Command clustersim drives a trace of multi-tenant churn — deterministic
// Poisson-ish container arrivals and departures — over a cluster of
// heterogeneous machines served by numaplace.Cluster, on the same
// discrete-event kernel the migration simulator uses. It is the fleet
// layer's scenario driver: per-machine figures show one box; clustersim
// shows a datacenter slice packing hundreds of containers across boxes
// under a routing policy, with periodic budgeted rebalancing.
//
// The trace and every scheduling decision derive from the -seed, so
// standard output is byte-identical across runs and GOMAXPROCS settings.
// Wall-clock admission latencies (the only nondeterministic measurements)
// go to standard error.
//
// Usage:
//
//	clustersim -machines amd,intel -policy best-predicted -n 240 -seed 1
//	clustersim -quick            # smaller training budget, CI smoke
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/des"
	"repro/internal/mlearn"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

type simConfig struct {
	machines []string
	policy   numaplace.ClusterPolicy
	n        int // total container arrivals
	vcpus    int
	seed     uint64

	meanArrival    float64 // mean inter-arrival time, sim seconds
	meanLife       float64 // mean container lifetime, sim seconds
	rebalanceEvery float64 // rebalance tick period, sim seconds
	budget         float64 // migration-seconds budget per rebalance pass
	drainBelow     float64 // consolidation threshold (fleet.Config.DrainBelow)

	trials, trees, corpus int // training fidelity
}

func main() {
	machineList := flag.String("machines", "amd,intel", "comma-separated machine models forming the fleet")
	policyName := flag.String("policy", "best-predicted", "routing policy: first-fit, least-loaded or best-predicted")
	n := flag.Int("n", 240, "number of container arrivals in the trace")
	vcpus := flag.Int("vcpus", 16, "vCPUs per container")
	seed := flag.Uint64("seed", 1, "trace seed (arrivals, workloads, lifetimes)")
	arrival := flag.Float64("arrival", 15, "mean inter-arrival time in simulated seconds")
	life := flag.Float64("life", 90, "mean container lifetime in simulated seconds")
	rebalance := flag.Float64("rebalance", 120, "rebalance tick period in simulated seconds (0 disables)")
	budget := flag.Float64("budget", 60, "migration-seconds budget per rebalance pass")
	drainBelow := flag.Float64("drain-below", 0.5, "consolidate machines below this utilization during rebalance")
	quick := flag.Bool("quick", false, "reduced training fidelity and a 200-container trace (CI smoke)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	policy, ok := numaplace.ClusterPolicyByName(*policyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	cfg := simConfig{
		machines:       strings.Split(*machineList, ","),
		policy:         policy,
		n:              *n,
		vcpus:          *vcpus,
		seed:           *seed,
		meanArrival:    *arrival,
		meanLife:       *life,
		rebalanceEvery: *rebalance,
		budget:         *budget,
		drainBelow:     *drainBelow,
		trials:         3, trees: 60, corpus: 30,
	}
	if *quick {
		cfg.trials, cfg.trees, cfg.corpus = 2, 10, 10
		if !flagSet("n") {
			cfg.n = 200
		}
	}
	if err := run(ctx, cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// run executes the churn trace and writes the deterministic report to out;
// wall-clock admission latencies go to errw.
func run(ctx context.Context, cfg simConfig, out, errw io.Writer) error {
	fmt.Fprintf(out, "clustersim: %d x %d-vCPU containers over %s, policy %s, seed %d\n",
		cfg.n, cfg.vcpus, strings.Join(cfg.machines, "+"), cfg.policy, cfg.seed)
	fmt.Fprintf(out, "trace: mean inter-arrival %gs, mean lifetime %gs, rebalance every %gs (budget %gs/pass)\n",
		cfg.meanArrival, cfg.meanLife, cfg.rebalanceEvery, cfg.budget)

	// Build and train one Engine per machine, then assemble the cluster.
	cl := numaplace.NewCluster(numaplace.ClusterConfig{Policy: cfg.policy, DrainBelow: cfg.drainBelow})
	names := make([]string, 0, len(cfg.machines))
	for i, mname := range cfg.machines {
		m, ok := numaplace.MachineByName(mname)
		if !ok {
			return fmt.Errorf("unknown machine %q", mname)
		}
		eng := numaplace.New(m,
			numaplace.WithCollectConfig(numaplace.CollectConfig{Trials: cfg.trials}),
			numaplace.WithTrainConfig(numaplace.TrainConfig{
				Seed: 1, Forest: mlearn.ForestConfig{Trees: cfg.trees},
				SelectionTrees: 4, SelectionFolds: 3,
			}),
		)
		ws := append(workloads.Paper(),
			workloads.CorpusFrom(cfg.corpus, 42, []string{"flat", "bw", "lat", "smt-averse", "cache"})...)
		ds, err := eng.Collect(ctx, ws, cfg.vcpus)
		if err != nil {
			return fmt.Errorf("collecting on %s: %w", mname, err)
		}
		pred, err := eng.Train(ctx, ds)
		if err != nil {
			return fmt.Errorf("training on %s: %w", mname, err)
		}
		name := fmt.Sprintf("%s-%d", mname, i)
		if err := cl.Add(name, eng); err != nil {
			return err
		}
		names = append(names, name)
		fmt.Fprintf(out, "trained %-8s %-22s %3d workloads x %2d placements, base/probe %d/%d\n",
			name, m.Topo.Name, len(ws), pred.NumPlacements, pred.Base, pred.Probe)
	}

	// Pre-generate the whole trace so the rng stream is independent of
	// event interleaving: arrival times, workloads and lifetimes are fixed
	// by the seed alone.
	catalog := workloads.Paper()
	rng := xrand.New(cfg.seed)
	exp := func(mean float64) float64 { return -mean * math.Log(1-rng.Float64()) }
	type arrival struct {
		at   float64
		w    numaplace.Workload
		life float64
	}
	trace := make([]arrival, cfg.n)
	t := 0.0
	for i := range trace {
		t += exp(cfg.meanArrival)
		trace[i] = arrival{at: t, w: catalog[rng.Intn(len(catalog))], life: exp(cfg.meanLife)}
	}

	var (
		sim        des.Sim
		admitted   int
		rejected   int
		runErr     error
		remaining  = cfg.n
		perBackend = map[string]int{}
		admitWall  []time.Duration

		// Time-weighted fleet utilization.
		utilArea, peakUtil float64
		lastT, lastUtil    float64
	)
	account := func() {
		now := sim.Now()
		utilArea += lastUtil * (now - lastT)
		lastT = now
		lastUtil = cl.Stats().Utilization
		if lastUtil > peakUtil {
			peakUtil = lastUtil
		}
	}

	for _, a := range trace {
		a := a
		sim.At(a.at, func() {
			if runErr != nil {
				return
			}
			account()
			remaining--
			start := time.Now()
			adm, err := cl.Place(ctx, a.w, cfg.vcpus)
			admitWall = append(admitWall, time.Since(start))
			if err != nil {
				if errors.Is(err, numaplace.ErrFleetFull) {
					rejected++
					account()
					return
				}
				runErr = err
				return
			}
			admitted++
			perBackend[adm.Backend]++
			id := adm.ID
			sim.After(a.life, func() {
				if runErr != nil {
					return
				}
				account()
				if err := cl.Release(ctx, id); err != nil {
					runErr = err
				}
				account()
			})
			account()
		})
	}

	var (
		migrationSeconds float64
		crossMoves       int
		intraMoves       int
		machinesDrained  int
	)
	if cfg.rebalanceEvery > 0 {
		var tick func()
		tick = func() {
			if runErr != nil {
				return
			}
			account()
			rep, err := cl.Rebalance(ctx, cfg.budget)
			if rep != nil {
				migrationSeconds += rep.TotalSeconds
				crossMoves += len(rep.Moves)
				machinesDrained += len(rep.Drained)
				for _, ip := range rep.Intra {
					intraMoves += len(ip.Report.Moves)
				}
			}
			if err != nil {
				runErr = err
				return
			}
			account()
			if remaining > 0 || cl.Len() > 0 {
				sim.After(cfg.rebalanceEvery, tick)
			}
		}
		sim.After(cfg.rebalanceEvery, tick)
	}

	end := sim.Run()
	if runErr != nil {
		return runErr
	}
	account()

	meanUtil := 0.0
	if end > 0 {
		meanUtil = utilArea / end
	}
	fmt.Fprintf(out, "\ntrace complete at t=%.1fs\n", end)
	fmt.Fprintf(out, "admitted           %6d\n", admitted)
	fmt.Fprintf(out, "rejected           %6d  (%.1f%% rejection rate)\n",
		rejected, 100*float64(rejected)/float64(cfg.n))
	for _, name := range names {
		fmt.Fprintf(out, "  on %-12s %6d\n", name, perBackend[name])
	}
	fmt.Fprintf(out, "fleet utilization  %6.1f%% mean, %.1f%% peak (allocated NUMA nodes)\n",
		100*meanUtil, 100*peakUtil)
	fmt.Fprintf(out, "rebalance moves    %6d cross-machine, %d intra-machine\n", crossMoves, intraMoves)
	fmt.Fprintf(out, "machines drained   %6d times (consolidation)\n", machinesDrained)
	fmt.Fprintf(out, "migration spend    %9.2fs simulated (fast mechanism)\n", migrationSeconds)
	st := cl.Stats()
	fmt.Fprintf(out, "leaked tenants     %6d (want 0)\n", st.Tenants)

	// Wall-clock placement latency is real measured time and therefore
	// nondeterministic: report it on errw, keeping out byte-identical.
	// Every Place attempt is timed, rejections included — a rejection
	// still pays routing and (under best-predicted) preview costs.
	if len(admitWall) > 0 {
		sorted := append([]time.Duration(nil), admitWall...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		fmt.Fprintf(errw, "place latency (wall): p50 %s, p95 %s, max %s over %d placement attempts\n",
			sorted[len(sorted)/2].Round(time.Microsecond),
			sorted[len(sorted)*95/100].Round(time.Microsecond),
			sorted[len(sorted)-1].Round(time.Microsecond), len(sorted))
	}
	return nil
}
