// Command clustersim drives a trace of multi-tenant churn — deterministic
// Poisson-ish container arrivals and departures — over a cluster of
// heterogeneous machines served by numaplace.Cluster, on the same
// discrete-event kernel the migration simulator uses. It is the fleet
// layer's scenario driver: per-machine figures show one box; clustersim
// shows a datacenter slice packing hundreds of containers across boxes
// under a routing policy, with periodic budgeted rebalancing.
//
// The trace and every scheduling decision derive from the -seed, so
// standard output is byte-identical across runs and GOMAXPROCS settings.
// Wall-clock admission latencies (the only nondeterministic measurements)
// go to standard error.
//
// Failure scenarios inject machine trouble at fixed simulated times and
// exercise the cluster's health tracking: a crashed machine stops
// answering probes, rides healthy→suspect→dead, and its tenants fail
// over automatically; a slow machine oscillates between healthy and
// suspect without dying; a partitioned machine dies and later rejoins,
// fencing the records that were failed over in its absence. Every
// scenario's transitions, failover reports and final accounting are part
// of the deterministic standard output.
//
// Usage:
//
// The restart scenario exercises the durability layer end to end inside
// the simulation: the control plane logs every mutation to a write-ahead
// log, "crashes" at sim time t (the cluster object and its engines are
// discarded), rebuilds the engines from scratch with the same seeds, and
// recovers the fleet by replaying the log. The recovered state must be
// byte-identical to the pre-crash state — the simulator verifies it and
// the report says so deterministically.
//
// Usage:
//
//	clustersim -machines amd,intel -policy best-predicted -n 240 -seed 1
//	clustersim -quick            # smaller training budget, CI smoke
//	clustersim -quick -crash amd-0@600          # kill amd-0 at t=600s
//	clustersim -quick -slow intel-1@300         # flaky probes from t=300s
//	clustersim -quick -partition amd-0@400:900  # unreachable in [400,900)
//	clustersim -quick -restart 800              # crash+recover control plane at t=800s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/des"
	"repro/internal/mlearn"
	"repro/internal/wal"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

type simConfig struct {
	machines []string
	policy   numaplace.ClusterPolicy
	n        int // total container arrivals
	vcpus    int
	seed     uint64

	meanArrival    float64 // mean inter-arrival time, sim seconds
	meanLife       float64 // mean container lifetime, sim seconds
	rebalanceEvery float64 // rebalance tick period, sim seconds
	budget         float64 // migration-seconds budget per rebalance pass
	drainBelow     float64 // consolidation threshold (fleet.Config.DrainBelow)

	probeEvery float64     // health probe period, sim seconds (0 disables)
	crash      []eventSpec // machines that stop answering probes at t
	slow       []eventSpec // machines answering every 3rd probe from t
	partition  []spanSpec  // machines unreachable in [from, to)
	restart    []float64   // control-plane crash+recover times
	dataDir    string      // WAL directory for -restart ("" = fresh temp dir)
	spread     bool        // spread workload replicas across racks

	trials, trees, corpus int // training fidelity
}

// eventSpec is one "machine@t" scenario entry; spanSpec one "machine@t1:t2".
type eventSpec struct {
	name string
	at   float64
}

type spanSpec struct {
	name     string
	from, to float64
}

// parseEvents parses a comma-separated list of machine@t specs.
func parseEvents(flagName, s string) ([]eventSpec, error) {
	if s == "" {
		return nil, nil
	}
	var out []eventSpec
	for _, part := range strings.Split(s, ",") {
		name, ts, ok := strings.Cut(part, "@")
		if !ok || name == "" {
			return nil, fmt.Errorf("-%s %q: want machine@t", flagName, part)
		}
		at, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s %q: bad time: %w", flagName, part, err)
		}
		out = append(out, eventSpec{name: name, at: at})
	}
	return out, nil
}

// parseTimes parses a comma-separated list of simulated times.
func parseTimes(flagName, s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		at, err := strconv.ParseFloat(part, 64)
		if err != nil || at <= 0 {
			return nil, fmt.Errorf("-%s %q: want a positive sim time", flagName, part)
		}
		out = append(out, at)
	}
	return out, nil
}

// parseSpans parses a comma-separated list of machine@t1:t2 specs.
func parseSpans(flagName, s string) ([]spanSpec, error) {
	if s == "" {
		return nil, nil
	}
	var out []spanSpec
	for _, part := range strings.Split(s, ",") {
		name, span, ok := strings.Cut(part, "@")
		if !ok || name == "" {
			return nil, fmt.Errorf("-%s %q: want machine@t1:t2", flagName, part)
		}
		fs, ts, ok := strings.Cut(span, ":")
		if !ok {
			return nil, fmt.Errorf("-%s %q: want machine@t1:t2", flagName, part)
		}
		from, err1 := strconv.ParseFloat(fs, 64)
		to, err2 := strconv.ParseFloat(ts, 64)
		if err1 != nil || err2 != nil || to <= from {
			return nil, fmt.Errorf("-%s %q: bad span", flagName, part)
		}
		out = append(out, spanSpec{name: name, from: from, to: to})
	}
	return out, nil
}

func main() {
	machineList := flag.String("machines", "amd,intel", "comma-separated machine models forming the fleet")
	policyName := flag.String("policy", "best-predicted", "routing policy: first-fit, least-loaded or best-predicted")
	n := flag.Int("n", 240, "number of container arrivals in the trace")
	vcpus := flag.Int("vcpus", 16, "vCPUs per container")
	seed := flag.Uint64("seed", 1, "trace seed (arrivals, workloads, lifetimes)")
	arrival := flag.Float64("arrival", 15, "mean inter-arrival time in simulated seconds")
	life := flag.Float64("life", 90, "mean container lifetime in simulated seconds")
	rebalance := flag.Float64("rebalance", 120, "rebalance tick period in simulated seconds (0 disables)")
	budget := flag.Float64("budget", 60, "migration-seconds budget per rebalance pass")
	drainBelow := flag.Float64("drain-below", 0.5, "consolidate machines below this utilization during rebalance")
	probeEvery := flag.Float64("probe-every", 10, "health probe period in simulated seconds (0 disables the monitor)")
	crash := flag.String("crash", "", "crash scenario: machine@t[,...] — stops answering probes at sim time t, never recovers")
	slow := flag.String("slow", "", "slow-node scenario: machine@t[,...] — answers only every third probe from sim time t")
	partition := flag.String("partition", "", "partition scenario: machine@t1:t2[,...] — unreachable in [t1,t2), then rejoins")
	restart := flag.String("restart", "", "restart scenario: t[,...] — crash the control plane at sim time t and recover it from its write-ahead log")
	spread := flag.Bool("spread", false, "spread replicas of a workload across failure domains (racks)")
	quick := flag.Bool("quick", false, "reduced training fidelity and a 200-container trace (CI smoke)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	policy, ok := numaplace.ClusterPolicyByName(*policyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	if *n < 0 || *vcpus <= 0 || *arrival <= 0 || *life <= 0 {
		fmt.Fprintln(os.Stderr, "-n must be non-negative; -vcpus, -arrival and -life positive")
		flag.Usage()
		os.Exit(2)
	}
	cfg := simConfig{
		machines:       strings.Split(*machineList, ","),
		policy:         policy,
		n:              *n,
		vcpus:          *vcpus,
		seed:           *seed,
		meanArrival:    *arrival,
		meanLife:       *life,
		rebalanceEvery: *rebalance,
		budget:         *budget,
		drainBelow:     *drainBelow,
		probeEvery:     *probeEvery,
		spread:         *spread,
		trials:         3, trees: 60, corpus: 30,
	}
	scenarioErr := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var err error
	cfg.crash, err = parseEvents("crash", *crash)
	scenarioErr(err)
	cfg.slow, err = parseEvents("slow", *slow)
	scenarioErr(err)
	cfg.partition, err = parseSpans("partition", *partition)
	scenarioErr(err)
	cfg.restart, err = parseTimes("restart", *restart)
	scenarioErr(err)
	if *quick {
		cfg.trials, cfg.trees, cfg.corpus = 2, 10, 10
		if !flagSet("n") {
			cfg.n = 200
		}
	}
	if err := run(ctx, cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// buildCluster builds and trains one Engine per configured machine and
// assembles them into a cluster. Training is fully seeded, so calling this
// twice (initial boot and a -restart recovery) yields engines whose
// predictions agree decision for decision — the property WAL replay needs.
// Machines alternate between two racks — the failure domains the -spread
// routing preference and the per-domain stats report against.
func buildCluster(ctx context.Context, cfg simConfig, out io.Writer) (*numaplace.Cluster, []string, error) {
	cl := numaplace.NewCluster(numaplace.ClusterConfig{
		Policy: cfg.policy, DrainBelow: cfg.drainBelow, SpreadDomains: cfg.spread,
	})
	names := make([]string, 0, len(cfg.machines))
	for i, mname := range cfg.machines {
		m, ok := numaplace.MachineByName(mname)
		if !ok {
			return nil, nil, fmt.Errorf("unknown machine %q", mname)
		}
		eng := numaplace.New(m,
			numaplace.WithCollectConfig(numaplace.CollectConfig{Trials: cfg.trials}),
			numaplace.WithTrainConfig(numaplace.TrainConfig{
				Seed: 1, Forest: mlearn.ForestConfig{Trees: cfg.trees},
				SelectionTrees: 4, SelectionFolds: 3,
			}),
		)
		ws := append(workloads.Paper(),
			workloads.CorpusFrom(cfg.corpus, 42, []string{"flat", "bw", "lat", "smt-averse", "cache"})...)
		ds, err := eng.Collect(ctx, ws, cfg.vcpus)
		if err != nil {
			return nil, nil, fmt.Errorf("collecting on %s: %w", mname, err)
		}
		pred, err := eng.Train(ctx, ds)
		if err != nil {
			return nil, nil, fmt.Errorf("training on %s: %w", mname, err)
		}
		name := fmt.Sprintf("%s-%d", mname, i)
		if err := cl.Add(name, eng, numaplace.InDomain(fmt.Sprintf("rack-%d", i%2))); err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		fmt.Fprintf(out, "trained %-8s %-22s %3d workloads x %2d placements, base/probe %d/%d\n",
			name, m.Topo.Name, len(ws), pred.NumPlacements, pred.Base, pred.Probe)
	}
	return cl, names, nil
}

// run executes the churn trace and writes the deterministic report to out;
// wall-clock admission latencies go to errw.
func run(ctx context.Context, cfg simConfig, out, errw io.Writer) error {
	fmt.Fprintf(out, "clustersim: %d x %d-vCPU containers over %s, policy %s, seed %d\n",
		cfg.n, cfg.vcpus, strings.Join(cfg.machines, "+"), cfg.policy, cfg.seed)
	fmt.Fprintf(out, "trace: mean inter-arrival %gs, mean lifetime %gs, rebalance every %gs (budget %gs/pass)\n",
		cfg.meanArrival, cfg.meanLife, cfg.rebalanceEvery, cfg.budget)
	for _, c := range cfg.crash {
		fmt.Fprintf(out, "scenario: %s crashes at t=%gs (probes every %gs)\n", c.name, c.at, cfg.probeEvery)
	}
	for _, s := range cfg.slow {
		fmt.Fprintf(out, "scenario: %s answers every 3rd probe from t=%gs (probes every %gs)\n", s.name, s.at, cfg.probeEvery)
	}
	for _, p := range cfg.partition {
		fmt.Fprintf(out, "scenario: %s partitioned in t=[%g,%g)s (probes every %gs)\n", p.name, p.from, p.to, cfg.probeEvery)
	}
	for _, rt := range cfg.restart {
		fmt.Fprintf(out, "scenario: control plane crashes and recovers from its log at t=%gs\n", rt)
	}

	cl, names, err := buildCluster(ctx, cfg, out)
	if err != nil {
		return err
	}

	// The restart scenario persists every fleet mutation to a real
	// write-ahead log so the mid-trace recovery replays exactly what a
	// restarted daemon would see.
	var wlog *wal.Log
	walDir := cfg.dataDir
	if len(cfg.restart) > 0 {
		if walDir == "" {
			d, err := os.MkdirTemp("", "clustersim-wal")
			if err != nil {
				return err
			}
			defer os.RemoveAll(d)
			walDir = d
		}
		l, _, _, err := wal.Open(wal.Options{Dir: walDir, Fsync: wal.FsyncNone})
		if err != nil {
			return fmt.Errorf("opening write-ahead log in %s: %w", walDir, err)
		}
		defer func() { wlog.Close() }()
		wlog = l
		cl.Fleet().SetPersister(wlog)
	}

	// Pre-generate the whole trace so the rng stream is independent of
	// event interleaving: arrival times, workloads and lifetimes are fixed
	// by the seed alone.
	catalog := workloads.Paper()
	rng := xrand.New(cfg.seed)
	exp := func(mean float64) float64 { return -mean * math.Log(1-rng.Float64()) }
	type arrival struct {
		at   float64
		w    numaplace.Workload
		life float64
	}
	trace := make([]arrival, cfg.n)
	t := 0.0
	for i := range trace {
		t += exp(cfg.meanArrival)
		trace[i] = arrival{at: t, w: catalog[rng.Intn(len(catalog))], life: exp(cfg.meanLife)}
	}

	var (
		sim        des.Sim
		admitted   int
		rejected   int
		runErr     error
		remaining  = cfg.n
		perBackend = map[string]int{}
		admitWall  []time.Duration

		// Time-weighted fleet utilization.
		utilArea, peakUtil float64
		lastT, lastUtil    float64
	)
	account := func() {
		now := sim.Now()
		utilArea += lastUtil * (now - lastT)
		lastT = now
		lastUtil = cl.Stats().Utilization
		if lastUtil > peakUtil {
			peakUtil = lastUtil
		}
	}

	for _, a := range trace {
		a := a
		sim.At(a.at, func() {
			if runErr != nil {
				return
			}
			account()
			remaining--
			// Wall-clock here measures the *implementation*, not the
			// simulation: admitWall is the real CPU cost of one Place
			// call, reported as telemetry and never fed back into
			// simulated time or any decision.
			start := time.Now() //numalint:ignore determinism telemetry: measures real Place latency, never feeds simulated state
			adm, err := cl.Place(ctx, a.w, cfg.vcpus)
			admitWall = append(admitWall, time.Since(start)) //numalint:ignore determinism telemetry: measures real Place latency, never feeds simulated state
			if err != nil {
				if errors.Is(err, numaplace.ErrFleetFull) {
					rejected++
					account()
					return
				}
				runErr = err
				return
			}
			admitted++
			perBackend[adm.Backend]++
			id := adm.ID
			sim.After(a.life, func() {
				if runErr != nil {
					return
				}
				account()
				if err := cl.Release(ctx, id); err != nil {
					runErr = err
				}
				account()
			})
			account()
		})
	}

	var (
		migrationSeconds float64
		crossMoves       int
		intraMoves       int
		machinesDrained  int
	)
	if cfg.rebalanceEvery > 0 {
		var tick func()
		tick = func() {
			if runErr != nil {
				return
			}
			account()
			rep, err := cl.Rebalance(ctx, cfg.budget)
			if rep != nil {
				migrationSeconds += rep.TotalSeconds
				crossMoves += len(rep.Moves)
				machinesDrained += len(rep.Drained)
				for _, ip := range rep.Intra {
					intraMoves += len(ip.Report.Moves)
				}
			}
			if err != nil {
				runErr = err
				return
			}
			account()
			if remaining > 0 || cl.Len() > 0 {
				sim.After(cfg.rebalanceEvery, tick)
			}
		}
		sim.After(cfg.rebalanceEvery, tick)
	}

	// Health monitor: probes every machine each period on the simulation
	// clock, so failure scenarios ride the deterministic event stream.
	// Scenario-driven misses advance the healthy→suspect→dead machine
	// state; death triggers the automatic failover pass, and a healed
	// partition rejoins via Revive (fencing records failed over in its
	// absence). All transitions are logged with their simulated times.
	var failoverStranded int
	var mon *numaplace.ClusterMonitor
	slowCount := map[string]int{}
	// startMonitor builds a monitor over the CURRENT cluster value: the
	// restart scenario discards the cluster mid-trace, and a monitor wired
	// to the dead one would probe the past. The slow-scenario probe counter
	// deliberately lives outside so flakiness phase survives a restart.
	startMonitor := func() error {
		probe := func(name string) bool {
			now := sim.Now()
			for _, c := range cfg.crash {
				if c.name == name && now >= c.at {
					return false
				}
			}
			for _, p := range cfg.partition {
				if p.name == name && now >= p.from && now < p.to {
					return false
				}
			}
			for _, s := range cfg.slow {
				// Deterministic flakiness: two misses then an answer, on
				// the machine's own probe counter — enough to oscillate
				// healthy<->suspect under the default thresholds without
				// ever reaching dead.
				if s.name == name && now >= s.at {
					slowCount[name]++
					return slowCount[name]%3 == 0
				}
			}
			return true
		}
		m, err := cl.Monitor(numaplace.SimTimers{Sim: &sim}, numaplace.ClusterMonitorConfig{
			IntervalSeconds: cfg.probeEvery,
			Probe:           probe,
			Until:           func() bool { return runErr == nil && (remaining > 0 || cl.Len() > 0) },
			OnTransition: func(name string, from, to numaplace.ClusterHealth, rep *numaplace.ClusterReport, err error) {
				fmt.Fprintf(out, "t=%8.1f  health %-10s %s -> %s\n", sim.Now(), name, from, to)
				if rep != nil {
					failoverStranded += rep.Stranded
					fmt.Fprintf(out, "t=%8.1f  failover %-8s rehomed %d, stranded %d (%.2fs migration)\n",
						sim.Now(), name, len(rep.Moves), rep.Stranded, rep.TotalSeconds)
				}
				if err != nil && !errors.Is(err, numaplace.ErrNoHealthyBackend) {
					runErr = err
				}
			},
			ReviveOnRejoin: true,
			OnRejoin: func(name string, fenced int, err error) {
				if err != nil {
					runErr = err
					return
				}
				fmt.Fprintf(out, "t=%8.1f  rejoin %-10s revived, fenced %d stale records\n", sim.Now(), name, fenced)
			},
		})
		if err != nil {
			return err
		}
		mon = m
		mon.Start(ctx)
		return nil
	}
	if cfg.probeEvery > 0 {
		for _, spec := range cfg.crash {
			if _, ok := cl.Engine(spec.name); !ok {
				return fmt.Errorf("-crash: unknown machine %q (have %s)", spec.name, strings.Join(names, ", "))
			}
		}
		for _, spec := range cfg.slow {
			if _, ok := cl.Engine(spec.name); !ok {
				return fmt.Errorf("-slow: unknown machine %q (have %s)", spec.name, strings.Join(names, ", "))
			}
		}
		for _, spec := range cfg.partition {
			if _, ok := cl.Engine(spec.name); !ok {
				return fmt.Errorf("-partition: unknown machine %q (have %s)", spec.name, strings.Join(names, ", "))
			}
		}
		if err := startMonitor(); err != nil {
			return err
		}
		defer func() { mon.Stop() }()
	}

	// Restart scenario: at each configured time the control plane crashes —
	// the cluster object and its engines are dropped on the floor — and a
	// successor rebuilds the engines (same seeds, same training), replays
	// the write-ahead log into them, and resumes the trace. Recovery is
	// verified on the spot: the recovered assignments and stats must equal
	// the pre-crash ones exactly, and the run fails loudly if they do not.
	for _, rt := range cfg.restart {
		rt := rt
		sim.At(rt, func() {
			if runErr != nil {
				return
			}
			account()
			prevAssign := cl.Assignments()
			prevStats := cl.Stats()
			fmt.Fprintf(out, "t=%8.1f  restart: control plane down with %d tenants at seq %d\n",
				sim.Now(), len(prevAssign), cl.Fleet().WALSeq())
			if mon != nil {
				mon.Stop()
				mon = nil
			}
			if err := wlog.Close(); err != nil {
				runErr = err
				return
			}
			cl2, _, err := buildCluster(ctx, cfg, io.Discard)
			if err != nil {
				runErr = fmt.Errorf("restart at t=%g: rebuilding engines: %w", rt, err)
				return
			}
			l2, st, recs, err := wal.Open(wal.Options{Dir: walDir, Fsync: wal.FsyncNone})
			if err != nil {
				runErr = fmt.Errorf("restart at t=%g: reopening log: %w", rt, err)
				return
			}
			if err := cl2.Fleet().Restore(ctx, st, recs, workloads.ByName); err != nil {
				runErr = fmt.Errorf("restart at t=%g: replaying log: %w", rt, err)
				return
			}
			cl2.Fleet().SetPersister(l2)
			wlog = l2
			identical := reflect.DeepEqual(prevAssign, cl2.Assignments()) &&
				reflect.DeepEqual(prevStats, cl2.Stats())
			fmt.Fprintf(out, "t=%8.1f  restart: recovered %d tenants at seq %d, state identical: %v\n",
				sim.Now(), len(cl2.Assignments()), l2.Head().RecoveredSeq, identical)
			if !identical {
				runErr = fmt.Errorf("restart at t=%g: recovered state diverged from pre-crash state", rt)
				return
			}
			cl = cl2
			if cfg.probeEvery > 0 {
				if err := startMonitor(); err != nil {
					runErr = err
					return
				}
			}
			account()
		})
	}

	end := sim.Run()
	if runErr != nil {
		return runErr
	}
	account()

	meanUtil := 0.0
	if end > 0 {
		meanUtil = utilArea / end
	}
	fmt.Fprintf(out, "\ntrace complete at t=%.1fs\n", end)
	fmt.Fprintf(out, "admitted           %6d\n", admitted)
	fmt.Fprintf(out, "rejected           %6d  (%.1f%% rejection rate)\n",
		rejected, 100*float64(rejected)/float64(cfg.n))
	for _, name := range names {
		fmt.Fprintf(out, "  on %-12s %6d\n", name, perBackend[name])
	}
	fmt.Fprintf(out, "fleet utilization  %6.1f%% mean, %.1f%% peak (allocated NUMA nodes)\n",
		100*meanUtil, 100*peakUtil)
	fmt.Fprintf(out, "rebalance moves    %6d cross-machine, %d intra-machine\n", crossMoves, intraMoves)
	fmt.Fprintf(out, "machines drained   %6d times (consolidation)\n", machinesDrained)
	fmt.Fprintf(out, "migration spend    %9.2fs simulated (fast mechanism)\n", migrationSeconds)
	st := cl.Stats()
	fmt.Fprintf(out, "leaked tenants     %6d (want 0)\n", st.Tenants)
	fmt.Fprintf(out, "failover passes    %6d (%d tenants rehomed, %d stranding events)\n",
		st.Failovers, st.FailedOver, failoverStranded)

	// Record conservation across failures: every record the cluster still
	// maps must resolve, and no live machine may hold engine-side records
	// the cluster does not know about (a still-dead machine legitimately
	// holds stale books — they are fenced on revive).
	unfenced := 0
	for _, name := range names {
		if h, _ := cl.HealthOf(name); h == numaplace.ClusterDead {
			continue
		}
		if eng, ok := cl.Engine(name); ok {
			unfenced += len(eng.Assignments())
		}
	}
	unfenced -= st.Tenants
	fmt.Fprintf(out, "unfenced records   %6d on live machines (want 0)\n", unfenced)

	fmt.Fprintf(out, "machines:\n")
	for _, b := range st.Backends {
		fmt.Fprintf(out, "  %-12s %-8s %-8s %3d tenants, %2d/%2d nodes free\n",
			b.Name, b.Domain, b.Health, b.Tenants, b.FreeNodes, b.TotalNodes)
	}
	for _, d := range st.Domains {
		fmt.Fprintf(out, "  domain %-8s %d machines (%d dead), utilization %.1f%%\n",
			d.Domain, d.Backends, d.Dead, 100*d.Utilization)
	}

	// Wall-clock placement latency is real measured time and therefore
	// nondeterministic: report it on errw, keeping out byte-identical.
	// Every Place attempt is timed, rejections included — a rejection
	// still pays routing and (under best-predicted) preview costs.
	if len(admitWall) > 0 {
		sorted := append([]time.Duration(nil), admitWall...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		fmt.Fprintf(errw, "place latency (wall): p50 %s, p95 %s, max %s over %d placement attempts\n",
			sorted[len(sorted)/2].Round(time.Microsecond),
			sorted[len(sorted)*95/100].Round(time.Microsecond),
			sorted[len(sorted)-1].Round(time.Microsecond), len(sorted))
	}
	return nil
}
