package main

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"testing"

	"repro"
)

func quickCfg(policy string, n int) simConfig {
	cfg := simConfig{
		machines: []string{"amd", "intel"},
		n:        n, vcpus: 16, seed: 1,
		meanArrival: 15, meanLife: 90,
		rebalanceEvery: 120, budget: 60, drainBelow: 0.9,
		trials: 2, trees: 8, corpus: 8,
	}
	p, ok := numaplace.ClusterPolicyByName(policy)
	if !ok {
		panic("unknown policy " + policy)
	}
	cfg.policy = p
	return cfg
}

// TestClustersimDeterministic asserts the acceptance property of the fleet
// simulator: a >= 200-container churn trace over the heterogeneous
// AMD+Intel fleet produces byte-identical standard output across repeated
// runs and across GOMAXPROCS 1 vs 4 (training, routing previews and the
// DES trace must all be schedule-independent).
func TestClustersimDeterministic(t *testing.T) {
	ctx := context.Background()
	cfg := quickCfg("best-predicted", 200)

	outputs := make([][]byte, 0, 3)
	for _, procs := range []int{1, 4, 4} {
		prev := runtime.GOMAXPROCS(procs)
		var out bytes.Buffer
		err := run(ctx, cfg, &out, io.Discard)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("run at GOMAXPROCS %d: %v", procs, err)
		}
		outputs = append(outputs, out.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Errorf("output differs between GOMAXPROCS 1 and 4:\n--- procs=1 ---\n%s\n--- procs=4 ---\n%s",
			outputs[0], outputs[1])
	}
	if !bytes.Equal(outputs[1], outputs[2]) {
		t.Errorf("output differs between repeated runs at the same seed:\n%s\nvs\n%s",
			outputs[1], outputs[2])
	}
}

// TestClustersimPolicies runs a short trace under each routing policy,
// checking the simulator completes without leaking tenants and that every
// admission is accounted for.
func TestClustersimPolicies(t *testing.T) {
	ctx := context.Background()
	for _, policy := range []string{"first-fit", "least-loaded", "best-predicted"} {
		var out bytes.Buffer
		if err := run(ctx, quickCfg(policy, 60), &out, io.Discard); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !bytes.Contains(out.Bytes(), []byte("leaked tenants          0")) {
			t.Errorf("%s: tenants leaked or report format changed:\n%s", policy, out.String())
		}
	}
}

// TestClustersimRestart runs the control-plane crash scenario — mid-trace
// the cluster is discarded, engines are rebuilt from scratch, and the
// write-ahead log is replayed into them — and asserts (a) the in-sim
// identity check passes (recovered assignments and stats equal the
// pre-crash ones exactly), (b) the whole trace, recovery included, is
// byte-identical across GOMAXPROCS 1 and 4, and (c) nothing leaks. The
// second restart replays a log that already spans a failover, so the
// health-transition records are exercised too.
func TestClustersimRestart(t *testing.T) {
	ctx := context.Background()
	mk := func() simConfig {
		cfg := quickCfg("best-predicted", 120)
		cfg.probeEvery = 10
		cfg.crash = []eventSpec{{name: "amd-0", at: 400}}
		cfg.restart = []float64{300, 700}
		cfg.dataDir = t.TempDir()
		return cfg
	}
	outputs := make([][]byte, 0, 2)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		var out bytes.Buffer
		err := run(ctx, mk(), &out, io.Discard)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("run at GOMAXPROCS %d: %v", procs, err)
		}
		outputs = append(outputs, out.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatalf("restart trace differs between GOMAXPROCS 1 and 4:\n--- procs=1 ---\n%s\n--- procs=4 ---\n%s",
			outputs[0], outputs[1])
	}
	got := outputs[0]
	if n := bytes.Count(got, []byte("restart: recovered")); n != 2 {
		t.Errorf("want 2 recovery lines, got %d:\n%s", n, got)
	}
	if bytes.Contains(got, []byte("state identical: false")) {
		t.Errorf("recovered state diverged from pre-crash state:\n%s", got)
	}
	for _, want := range []string{
		"state identical: true",
		"leaked tenants          0",
		"unfenced records        0 on live machines",
		"suspect -> dead",
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

// TestClustersimFailureScenarios runs each failure-injection scenario and
// asserts (a) byte-identical output across GOMAXPROCS 1 and 4 — recovery
// must ride the deterministic event stream — and (b) the recovery
// accounting: no tenant record leaked, no stale engine-side record left
// unfenced on a live machine.
func TestClustersimFailureScenarios(t *testing.T) {
	ctx := context.Background()
	base := func() simConfig {
		cfg := quickCfg("first-fit", 120)
		cfg.probeEvery = 10
		return cfg
	}
	scenarios := map[string]func() simConfig{
		"crash": func() simConfig {
			cfg := base()
			cfg.crash = []eventSpec{{name: "amd-0", at: 300}}
			return cfg
		},
		"slow": func() simConfig {
			cfg := base()
			cfg.slow = []eventSpec{{name: "intel-1", at: 300}}
			return cfg
		},
		"partition": func() simConfig {
			cfg := base()
			cfg.partition = []spanSpec{{name: "amd-0", from: 300, to: 700}}
			cfg.spread = true
			return cfg
		},
	}
	for name, mk := range scenarios {
		t.Run(name, func(t *testing.T) {
			outputs := make([][]byte, 0, 2)
			for _, procs := range []int{1, 4} {
				prev := runtime.GOMAXPROCS(procs)
				var out bytes.Buffer
				err := run(ctx, mk(), &out, io.Discard)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatalf("run at GOMAXPROCS %d: %v", procs, err)
				}
				outputs = append(outputs, out.Bytes())
			}
			if !bytes.Equal(outputs[0], outputs[1]) {
				t.Fatalf("scenario output differs between GOMAXPROCS 1 and 4:\n--- procs=1 ---\n%s\n--- procs=4 ---\n%s",
					outputs[0], outputs[1])
			}
			got := outputs[0]
			for _, want := range []string{
				"leaked tenants          0",
				"unfenced records        0 on live machines",
			} {
				if !bytes.Contains(got, []byte(want)) {
					t.Errorf("report missing %q:\n%s", want, got)
				}
			}
			switch name {
			case "crash":
				for _, want := range []string{"healthy -> suspect", "suspect -> dead", "failover amd-0"} {
					if !bytes.Contains(got, []byte(want)) {
						t.Errorf("crash scenario missing %q:\n%s", want, got)
					}
				}
				if bytes.Contains(got, []byte("rejoin")) {
					t.Errorf("crashed machine rejoined without healing:\n%s", got)
				}
			case "slow":
				if !bytes.Contains(got, []byte("healthy -> suspect")) ||
					!bytes.Contains(got, []byte("suspect -> healthy")) {
					t.Errorf("slow scenario should oscillate healthy<->suspect:\n%s", got)
				}
				if bytes.Contains(got, []byte("-> dead")) {
					t.Errorf("slow machine must never die:\n%s", got)
				}
			case "partition":
				for _, want := range []string{"suspect -> dead", "rejoin amd-0", "dead -> healthy"} {
					if !bytes.Contains(got, []byte(want)) {
						t.Errorf("partition scenario missing %q:\n%s", want, got)
					}
				}
			}
		})
	}
}
