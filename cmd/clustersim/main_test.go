package main

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"testing"

	"repro"
)

func quickCfg(policy string, n int) simConfig {
	cfg := simConfig{
		machines: []string{"amd", "intel"},
		n:        n, vcpus: 16, seed: 1,
		meanArrival: 15, meanLife: 90,
		rebalanceEvery: 120, budget: 60, drainBelow: 0.9,
		trials: 2, trees: 8, corpus: 8,
	}
	p, ok := numaplace.ClusterPolicyByName(policy)
	if !ok {
		panic("unknown policy " + policy)
	}
	cfg.policy = p
	return cfg
}

// TestClustersimDeterministic asserts the acceptance property of the fleet
// simulator: a >= 200-container churn trace over the heterogeneous
// AMD+Intel fleet produces byte-identical standard output across repeated
// runs and across GOMAXPROCS 1 vs 4 (training, routing previews and the
// DES trace must all be schedule-independent).
func TestClustersimDeterministic(t *testing.T) {
	ctx := context.Background()
	cfg := quickCfg("best-predicted", 200)

	outputs := make([][]byte, 0, 3)
	for _, procs := range []int{1, 4, 4} {
		prev := runtime.GOMAXPROCS(procs)
		var out bytes.Buffer
		err := run(ctx, cfg, &out, io.Discard)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("run at GOMAXPROCS %d: %v", procs, err)
		}
		outputs = append(outputs, out.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Errorf("output differs between GOMAXPROCS 1 and 4:\n--- procs=1 ---\n%s\n--- procs=4 ---\n%s",
			outputs[0], outputs[1])
	}
	if !bytes.Equal(outputs[1], outputs[2]) {
		t.Errorf("output differs between repeated runs at the same seed:\n%s\nvs\n%s",
			outputs[1], outputs[2])
	}
}

// TestClustersimPolicies runs a short trace under each routing policy,
// checking the simulator completes without leaking tenants and that every
// admission is accounted for.
func TestClustersimPolicies(t *testing.T) {
	ctx := context.Background()
	for _, policy := range []string{"first-fit", "least-loaded", "best-predicted"} {
		var out bytes.Buffer
		if err := run(ctx, quickCfg(policy, 60), &out, io.Discard); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !bytes.Contains(out.Bytes(), []byte("leaked tenants          0")) {
			t.Errorf("%s: tenants leaked or report format changed:\n%s", policy, out.String())
		}
	}
}
