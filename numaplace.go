// Package numaplace is the public facade of this reproduction of
// "Placement of Virtual Containers on NUMA systems: A Practical and
// Comprehensive Model" (Funston et al., USENIX ATC 2018).
//
// It re-exports the pipeline end to end:
//
//	m := numaplace.AMD()                         // machine description
//	spec := numaplace.SpecFor(m)                 // Step 1: concerns
//	placements, _ := numaplace.Placements(spec, 16) // Step 2: important placements
//	ds, _ := numaplace.Collect(m, ws, 16, ...)   // Step 3: training runs
//	pred, _ := numaplace.Train(ds, ...)          //         model
//	vec, _ := pred.Predict(perfA, perfB)         // Step 4: predict & place
//
// See the examples/ directory for runnable programs and internal/… for the
// full implementation.
package numaplace

import (
	"io"

	"repro/internal/concern"
	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/migrate"
	"repro/internal/perfsim"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workloads"
	"repro/internal/xparallel"
)

// Machine descriptions (paper §2 testbeds and §8 forward-looking systems).
var (
	AMD        = machines.AMD
	Intel      = machines.Intel
	Zen        = machines.Zen
	HaswellCoD = machines.HaswellCoD
)

// Machine bundles a topology and interconnect graph.
type Machine = machines.Machine

// SetParallelism bounds the worker pool shared by placement enumeration,
// forest training and the experiment drivers; n <= 0 restores the default
// (GOMAXPROCS). It returns the previous setting. Results are bit-identical
// at every setting — parallelism only changes wall-clock time.
func SetParallelism(n int) int { return xparallel.SetMaxWorkers(n) }

// Spec is a machine's scheduling-concern specification (paper §4).
type Spec = concern.Spec

// SpecFor derives the concern specification from a machine description.
func SpecFor(m Machine) *Spec { return concern.FromMachine(m) }

// Important is one important placement with its score vector.
type Important = placement.Important

// Placements enumerates the important placements for a container size
// (paper Algorithms 1-3).
func Placements(spec *Spec, vcpus int) ([]Important, error) {
	return placement.Enumerate(spec, vcpus)
}

// Pin materializes a placement into a vCPU-to-hardware-thread assignment.
func Pin(spec *Spec, p placement.Placement, vcpus int) ([]topology.ThreadID, error) {
	return placement.Pin(spec, p, vcpus)
}

// Workload is a container's performance-sensitivity descriptor.
type Workload = perfsim.Workload

// PaperWorkloads returns the 18 applications of the paper's evaluation.
func PaperWorkloads() []Workload { return workloads.Paper() }

// WorkloadByName looks up a paper workload.
func WorkloadByName(name string) (Workload, bool) { return workloads.ByName(name) }

// Dataset holds ground-truth training executions.
type Dataset = core.Dataset

// CollectConfig configures ground-truth collection.
type CollectConfig = core.CollectConfig

// Collect measures every workload in every important placement (Step 3's
// training runs, on the simulated machine).
func Collect(m Machine, ws []Workload, vcpus int, cfg CollectConfig) (*Dataset, error) {
	return core.Collect(m, ws, vcpus, cfg)
}

// TrainConfig configures predictor training.
type TrainConfig = core.TrainConfig

// Predictor is the trained performance model (multi-output random forest
// over two placement observations).
type Predictor = core.Predictor

// Train fits a predictor, automatically selecting the two input placements.
func Train(ds *Dataset, cfg TrainConfig) (*Predictor, error) { return core.Train(ds, cfg) }

// LoadPredictor reads a predictor saved with Predictor.Save.
func LoadPredictor(r io.Reader) (*Predictor, error) { return core.LoadPredictor(r) }

// BestPlacement returns the fastest predicted placement index of a vector.
func BestPlacement(vec []float64) int { return core.BestPlacement(vec) }

// PackingExperiment is the §7 packing study for one machine and workload.
type PackingExperiment = sched.Experiment

// NewPackingExperiment builds a packing experiment (Figure 5).
func NewPackingExperiment(m Machine, w Workload, vcpus int, pred *Predictor) (*PackingExperiment, error) {
	return sched.NewExperiment(m, w, vcpus, pred)
}

// Packing policies (Figure 5).
const (
	PolicyML              = sched.ML
	PolicyConservative    = sched.Conservative
	PolicyAggressive      = sched.Aggressive
	PolicySmartAggressive = sched.SmartAggressive
)

// MigrationProfile describes a container's memory for migration.
type MigrationProfile = migrate.Profile

// MigrationProfileFor derives a migration profile from a workload.
func MigrationProfileFor(w Workload, vcpus int) MigrationProfile {
	return migrate.ProfileFor(w, vcpus)
}

// Migration mechanisms (Table 2).
const (
	MigrateDefaultLinux = migrate.DefaultLinux
	MigrateFast         = migrate.Fast
	MigrateThrottled    = migrate.Throttled
)

// Migrate simulates one container migration.
func Migrate(p MigrationProfile, mech migrate.Mechanism, cfg migrate.Config) (*migrate.Result, error) {
	return migrate.Run(p, mech, cfg)
}
