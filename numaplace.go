// Package numaplace is the public facade of this reproduction of
// "Placement of Virtual Containers on NUMA systems: A Practical and
// Comprehensive Model" (Funston et al., USENIX ATC 2018).
//
// The primary API is the long-lived, concurrency-safe Engine, which owns
// memoized caches for the expensive pipeline artifacts and serves both the
// batch lifecycle and an online placement scheduler:
//
//	eng := numaplace.New(numaplace.AMD())
//	placements, _ := eng.Placements(ctx, 16)     // Step 2: memoized
//	ds, _ := eng.Collect(ctx, ws, 16)            // Step 3: training runs
//	pred, _ := eng.Train(ctx, ds)                //         model (registered)
//	vec, _ := eng.Predict(16, perfA, perfB)      // Step 4: predict
//	a, _ := eng.Place(ctx, workload, 16)         // online: admit & pin
//	eng.Release(ctx, a.ID)                       //         evict
//	eng.Rebalance(ctx)                           //         re-pack
//
// Every Engine method takes a context.Context and is cancellable; failures
// callers can branch on wrap the sentinel errors in errors.go.
//
// The original stateless free functions (Placements, Collect, Train, …)
// remain as deprecated wrappers delegating to a process-wide default
// Engine per machine, so existing programs keep working — and silently
// gain the shared caches. See the examples/ directory for runnable
// programs and internal/… for the full implementation.
package numaplace

import (
	"context"
	"io"

	"repro/internal/concern"
	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/migrate"
	"repro/internal/perfsim"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workloads"
	"repro/internal/xparallel"
)

// Machine descriptions (paper §2 testbeds and §8 forward-looking systems).
var (
	AMD        = machines.AMD
	Intel      = machines.Intel
	Zen        = machines.Zen
	HaswellCoD = machines.HaswellCoD
)

// Machine bundles a topology and interconnect graph.
type Machine = machines.Machine

// MachineByName resolves the CLI-style machine names ("amd", "intel",
// "zen", "haswell-cod") to a machine description.
func MachineByName(name string) (Machine, bool) {
	switch name {
	case "amd":
		return AMD(), true
	case "intel":
		return Intel(), true
	case "zen":
		return Zen(), true
	case "haswell-cod":
		return HaswellCoD(), true
	default:
		return Machine{}, false
	}
}

// SetParallelism bounds the worker pool shared by placement enumeration,
// forest training and the experiment drivers; n <= 0 restores the default
// (GOMAXPROCS). It returns the previous setting. Results are bit-identical
// at every setting — parallelism only changes wall-clock time.
func SetParallelism(n int) int { return xparallel.SetMaxWorkers(n) }

// Spec is a machine's scheduling-concern specification (paper §4).
type Spec = concern.Spec

// SpecFor derives the concern specification from a machine description.
// The returned spec is the caller's own fresh derivation (safe to modify);
// passing it unmodified to the deprecated wrappers below still hits the
// default Engine's caches, because they recognize specs equivalent to the
// machine's canonical one.
//
// Deprecated: use New(m).Spec(); the Engine derives and retains the spec.
func SpecFor(m Machine) *Spec { return concern.FromMachine(m) }

// Important is one important placement with its score vector.
type Important = placement.Important

// Placement is a class of vCPU-to-hardware mappings: a node set plus the
// sharing degree chosen for each enumerated per-node concern.
type Placement = placement.Placement

// Placements enumerates the important placements for a container size
// (paper Algorithms 1-3).
//
// Deprecated: use Engine.Placements, which memoizes the enumeration and
// lets concurrent callers share one computation. This wrapper delegates to
// the machine's default Engine (results are bit-identical); hand-built
// specs without a full machine description keep the direct, uncached path.
func Placements(spec *Spec, vcpus int) ([]Important, error) {
	if !specHasMachine(spec) {
		return placement.Enumerate(spec, vcpus)
	}
	return DefaultEngine(spec.Machine).placementsForSpec(context.Background(), spec, vcpus)
}

// Pin materializes a placement into a vCPU-to-hardware-thread assignment.
//
// Deprecated: use Engine.Pin, which memoizes pinnings. This wrapper
// delegates to the machine's default Engine; hand-built specs without a
// full machine description keep the direct, uncached path.
func Pin(spec *Spec, p Placement, vcpus int) ([]topology.ThreadID, error) {
	if !specHasMachine(spec) {
		return placement.Pin(spec, p, vcpus)
	}
	return DefaultEngine(spec.Machine).pinForSpec(context.Background(), spec, p, vcpus)
}

// specHasMachine reports whether the spec carries a complete machine
// description (hand-built specs may omit it; the old stateless API
// accepted them, so the deprecated wrappers must keep working).
func specHasMachine(spec *Spec) bool {
	return spec != nil && spec.Machine.Topo != nil && spec.Machine.IC != nil
}

// Workload is a container's performance-sensitivity descriptor.
type Workload = perfsim.Workload

// PaperWorkloads returns the 18 applications of the paper's evaluation.
func PaperWorkloads() []Workload { return workloads.Paper() }

// WorkloadByName looks up a paper workload.
func WorkloadByName(name string) (Workload, bool) { return workloads.ByName(name) }

// Dataset holds ground-truth training executions.
type Dataset = core.Dataset

// CollectConfig configures ground-truth collection.
type CollectConfig = core.CollectConfig

// Collect measures every workload in every important placement (Step 3's
// training runs, on the simulated machine).
//
// Deprecated: use Engine.Collect, which is cancellable and reuses the
// Engine's memoized enumeration. This wrapper delegates to the machine's
// default Engine.
func Collect(m Machine, ws []Workload, vcpus int, cfg CollectConfig) (*Dataset, error) {
	return DefaultEngine(m).collectWith(context.Background(), ws, vcpus, cfg)
}

// TrainConfig configures predictor training.
type TrainConfig = core.TrainConfig

// Predictor is the trained performance model (multi-output random forest
// over two placement observations).
type Predictor = core.Predictor

// Train fits a predictor, automatically selecting the two input placements.
//
// Deprecated: use Engine.Train, which is cancellable and registers the
// predictor for online placement. This wrapper delegates to the dataset's
// machine's default Engine (and registers the predictor there too);
// hand-assembled datasets without a machine description train directly.
func Train(ds *Dataset, cfg TrainConfig) (*Predictor, error) {
	if ds.Machine.Topo == nil || ds.Machine.IC == nil {
		return core.Train(ds, cfg)
	}
	return DefaultEngine(ds.Machine).trainWith(context.Background(), ds, cfg)
}

// LoadPredictor reads a predictor saved with Predictor.Save.
func LoadPredictor(r io.Reader) (*Predictor, error) { return core.LoadPredictor(r) }

// BestPlacement returns the fastest predicted placement index of a vector.
func BestPlacement(vec []float64) int { return core.BestPlacement(vec) }

// PackingExperiment is the §7 packing study for one machine and workload.
type PackingExperiment = sched.Experiment

// NewPackingExperiment builds a packing experiment (Figure 5).
//
// Deprecated: use Engine.NewPackingExperiment, which reuses the Engine's
// memoized spec and enumeration and honours a context. This wrapper
// delegates to the machine's default Engine.
func NewPackingExperiment(m Machine, w Workload, vcpus int, pred *Predictor) (*PackingExperiment, error) {
	return DefaultEngine(m).newExperiment(context.Background(), w, vcpus, pred)
}

// Packing policies (Figure 5).
const (
	PolicyML              = sched.ML
	PolicyConservative    = sched.Conservative
	PolicyAggressive      = sched.Aggressive
	PolicySmartAggressive = sched.SmartAggressive
)

// MigrationProfile describes a container's memory for migration.
type MigrationProfile = migrate.Profile

// MigrationProfileFor derives a migration profile from a workload.
func MigrationProfileFor(w Workload, vcpus int) MigrationProfile {
	return migrate.ProfileFor(w, vcpus)
}

// Migration mechanisms (Table 2).
const (
	MigrateDefaultLinux = migrate.DefaultLinux
	MigrateFast         = migrate.Fast
	MigrateThrottled    = migrate.Throttled
)

// Migrate simulates one container migration.
//
// Deprecated: use Engine.Migrate, which honours a context.
func Migrate(p MigrationProfile, mech migrate.Mechanism, cfg migrate.Config) (*migrate.Result, error) {
	return migrate.RunCtx(context.Background(), p, mech, cfg)
}
