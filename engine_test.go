package numaplace

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/concern"
	"repro/internal/mlearn"
	"repro/internal/placement"
	"repro/internal/workloads"
)

// quickEngine returns an Engine on machine m with a fast train/collect
// configuration for tests.
func quickEngine(m Machine) *Engine {
	return New(m,
		numaplaceTestCollect(),
		WithTrainConfig(TrainConfig{
			Seed: 1, Forest: mlearn.ForestConfig{Trees: 10},
			SelectionTrees: 4, SelectionFolds: 3,
		}),
	)
}

func numaplaceTestCollect() Option {
	return WithCollectConfig(CollectConfig{Trials: 2})
}

// TestEnginePlacementsParity asserts the Engine path returns bit-identical
// enumerations to the direct pipeline, for every machine and both via the
// Engine API and via the deprecated free functions.
func TestEnginePlacementsParity(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		m Machine
		v int
	}{{AMD(), 16}, {Intel(), 24}, {Zen(), 16}, {HaswellCoD(), 12}} {
		want, err := placement.Enumerate(concern.FromMachine(tc.m), tc.v)
		if err != nil {
			t.Fatal(err)
		}
		eng := New(tc.m)
		got, err := eng.Placements(ctx, tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Engine.Placements differs from placement.Enumerate", tc.m.Topo.Name)
		}
		// Deprecated wrapper path (shares the default engine's cache).
		spec := SpecFor(tc.m)
		got2, err := Placements(spec, tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Errorf("%s: free-function Placements differs from placement.Enumerate", tc.m.Topo.Name)
		}
		// Pin parity for every important placement.
		for _, p := range want {
			direct, err := placement.Pin(concern.FromMachine(tc.m), p.Placement, tc.v)
			if err != nil {
				t.Fatal(err)
			}
			viaEngine, err := eng.Pin(ctx, p.Placement, tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(viaEngine, direct) {
				t.Errorf("%s %s: Engine.Pin differs", tc.m.Topo.Name, p)
			}
			// Second call must come from cache and stay identical.
			cached, err := eng.Pin(ctx, p.Placement, tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cached, direct) {
				t.Errorf("%s %s: cached Engine.Pin differs", tc.m.Topo.Name, p)
			}
		}
		if s := eng.Stats(); s.PinHits == 0 {
			t.Errorf("%s: no pin cache hits recorded", tc.m.Topo.Name)
		}
	}
}

// TestEngineConcurrentPlacements hammers one Engine from many goroutines
// (run it under -race) and asserts single-flight behaviour: the expensive
// enumeration runs exactly once per (machine, vcpus) key while every
// caller receives the same bit-identical result.
func TestEngineConcurrentPlacements(t *testing.T) {
	ctx := context.Background()
	eng := New(AMD())
	want, err := placement.Enumerate(concern.FromMachine(AMD()), 16)
	if err != nil {
		t.Fatal(err)
	}
	want8, err := placement.Enumerate(concern.FromMachine(AMD()), 8)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	results := make([][]Important, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := 16
			if g%4 == 3 {
				v = 8
			}
			results[g], errs[g] = eng.Placements(ctx, v)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		ref := want
		if g%4 == 3 {
			ref = want8
		}
		if !reflect.DeepEqual(results[g], ref) {
			t.Fatalf("goroutine %d: result differs from serial enumeration", g)
		}
	}
	s := eng.Stats()
	if s.Enumerations != 2 { // one per distinct vcpus key
		t.Errorf("enumerations = %d, want 2 (single-flight per key)", s.Enumerations)
	}
	if s.PlacementHits != goroutines-2 {
		t.Errorf("placement hits = %d, want %d", s.PlacementHits, goroutines-2)
	}
}

// TestEngineCollectTrainParity asserts the Engine's cached-artifact
// collection and training produce bit-identical results to the stateless
// pipeline.
func TestEngineCollectTrainParity(t *testing.T) {
	ctx := context.Background()
	m := Intel()
	ws := append(PaperWorkloads(), workloads.CorpusFrom(10, 3, []string{"flat", "bw", "lat"})...)
	cfg := TrainConfig{
		Seed: 1, Forest: mlearn.ForestConfig{Trees: 10},
		SelectionTrees: 4, SelectionFolds: 3,
	}

	eng := quickEngine(m)
	ds, err := eng.Collect(ctx, ws, 24)
	if err != nil {
		t.Fatal(err)
	}
	wantDS, err := Collect(m, ws, 24, CollectConfig{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Perf, wantDS.Perf) {
		t.Fatal("Engine.Collect performance matrix differs from core.Collect")
	}

	pred, err := eng.Train(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	wantPred, err := Train(wantDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Base != wantPred.Base || pred.Probe != wantPred.Probe {
		t.Fatalf("Engine.Train chose pair (%d,%d), want (%d,%d)",
			pred.Base, pred.Probe, wantPred.Base, wantPred.Probe)
	}
	wi := ds.WorkloadIndex("WTbtree")
	a, err := pred.Predict(ds.Perf[wi][pred.Base], ds.Perf[wi][pred.Probe])
	if err != nil {
		t.Fatal(err)
	}
	b, err := wantPred.Predict(ds.Perf[wi][pred.Base], ds.Perf[wi][pred.Probe])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Engine-trained predictor disagrees with free-function path")
	}

	// Train must have registered the predictor for online use.
	if _, ok := eng.Predictor(24); !ok {
		t.Fatal("Train did not register the predictor")
	}
	vec, err := eng.Predict(24, ds.Perf[wi][pred.Base], ds.Perf[wi][pred.Probe])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vec, a) {
		t.Fatal("Engine.Predict disagrees with Predictor.Predict")
	}
	if _, err := eng.Predict(24, -1, 1200); !errors.Is(err, ErrBadObservation) {
		t.Errorf("Predict(-1) err = %v, want ErrBadObservation", err)
	}

	// The zero-alloc serving variant must agree bit-for-bit.
	into := make([]float64, pred.NumPlacements)
	if err := eng.PredictInto(into, 24, ds.Perf[wi][pred.Base], ds.Perf[wi][pred.Probe]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(into, vec) {
		t.Fatal("Engine.PredictInto disagrees with Engine.Predict")
	}
	if err := eng.PredictInto(into, 99, 1000, 1200); !errors.Is(err, ErrUntrained) {
		t.Errorf("PredictInto(untrained size) err = %v, want ErrUntrained", err)
	}
}

// TestEngineCancellation covers the cancellation satellite: a context
// cancelled before or during Collect/Train/Placements returns ctx.Err()
// promptly and leaves the Engine fully usable.
func TestEngineCancellation(t *testing.T) {
	m := AMD()

	t.Run("pre-cancelled", func(t *testing.T) {
		eng := quickEngine(m)
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.Placements(cancelled, 16); !errors.Is(err, context.Canceled) {
			t.Errorf("Placements err = %v, want context.Canceled", err)
		}
		if _, err := eng.Collect(cancelled, PaperWorkloads(), 16); !errors.Is(err, context.Canceled) {
			t.Errorf("Collect err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-collect", func(t *testing.T) {
		eng := quickEngine(m)
		// A corpus big enough that collection takes well over the cancel
		// delay (thousands of simulated runs).
		ws := append(PaperWorkloads(), workloads.CorpusFrom(2000, 7,
			[]string{"flat", "bw", "lat", "smt-averse", "cache"})...)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := eng.Collect(ctx, ws, 16)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Collect err = %v, want context.Canceled", err)
			}
			// "Promptly": well under the full collection time (seconds).
			if dt := time.Since(start); dt > 5*time.Second {
				t.Fatalf("cancelled Collect took %v", dt)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("cancelled Collect never returned")
		}
		assertEngineUsable(t, eng)
	})

	t.Run("mid-train", func(t *testing.T) {
		eng := quickEngine(m)
		// A corpus big enough that the placement-pair search takes well
		// over the cancel delay even on the flat training data plane
		// (the 60-row corpus this test started with now trains to
		// completion in under the 20 ms sleep).
		ws := append(PaperWorkloads(), workloads.CorpusFrom(600, 7,
			[]string{"flat", "bw", "lat", "smt-averse", "cache"})...)
		ds, err := eng.Collect(context.Background(), ws, 16)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := eng.Train(ctx, ds)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Train err = %v, want context.Canceled", err)
			}
			if dt := time.Since(start); dt > 10*time.Second {
				t.Fatalf("cancelled Train took %v", dt)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("cancelled Train never returned")
		}
		// A cancelled Train must not have registered a predictor.
		if _, ok := eng.Predictor(16); ok {
			t.Fatal("cancelled Train registered a predictor")
		}
		assertEngineUsable(t, eng)
	})
}

// assertEngineUsable verifies the Engine still serves correct results
// after a cancelled operation.
func assertEngineUsable(t *testing.T, eng *Engine) {
	t.Helper()
	ctx := context.Background()
	imps, err := eng.Placements(ctx, 16)
	if err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
	if len(imps) != 13 {
		t.Fatalf("placements after cancellation = %d, want 13", len(imps))
	}
	if _, err := eng.Collect(ctx, PaperWorkloads()[:6], 16); err != nil {
		t.Fatalf("Collect after cancellation: %v", err)
	}
}

// TestHandBuiltSpecWithoutMachine keeps the old stateless contract: the
// deprecated wrappers must accept a hand-written Spec that carries no
// machine description (it cannot be routed to a default Engine, whose
// registry keys on machine fingerprints) and fall back to the direct
// pipeline instead of panicking.
func TestHandBuiltSpecWithoutMachine(t *testing.T) {
	spec := &Spec{
		Node: &concern.CountConcern{
			Name: "L3", Count: 4, Capacity: 8, PerNode: 1,
			AffectsCost: true, InversePossible: true,
		},
	}
	imps, err := Placements(spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := placement.Enumerate(spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(imps, want) {
		t.Fatal("machine-less spec path differs from direct enumeration")
	}
}

// TestSpecMutatedAfterFirstUse keeps another old stateless contract: a
// caller may reuse SpecFor's result across calls, customizing it in
// between — every deprecated-wrapper call must honour the spec's current
// contents, not a verdict cached on first sight of the pointer.
func TestSpecMutatedAfterFirstUse(t *testing.T) {
	m := AMD()
	spec := SpecFor(m)
	first, err := Placements(spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 13 {
		t.Fatalf("canonical spec yields %d placements, want 13", len(first))
	}
	// Customize: drop the interconnect concern, as a user studying the
	// symmetric-machine ablation would.
	spec.Pareto = nil
	second, err := Placements(spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := placement.Enumerate(spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, want) {
		t.Fatal("mutated spec served stale cached enumeration")
	}
	if reflect.DeepEqual(second, first) {
		t.Fatal("dropping the Pareto concern changed nothing — stale cache")
	}
}

// TestEngineTypedErrors asserts the documented sentinels surface through
// errors.Is at the API boundary.
func TestEngineTypedErrors(t *testing.T) {
	ctx := context.Background()
	eng := New(AMD())

	// 11 vCPUs: no balanced feasible node count on an 8x8 machine.
	if _, err := eng.Placements(ctx, 11); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Placements(11) err = %v, want ErrInfeasible", err)
	}
	if _, err := eng.Predict(16, 1000, 1200); !errors.Is(err, ErrUntrained) {
		t.Errorf("Predict without predictor err = %v, want ErrUntrained", err)
	}
	wt, _ := WorkloadByName("WTbtree")
	if _, err := eng.Place(ctx, wt, 16); !errors.Is(err, ErrUntrained) {
		t.Errorf("Place without predictor err = %v, want ErrUntrained", err)
	}
	if err := eng.Release(ctx, 42); !errors.Is(err, ErrUnknownContainer) {
		t.Errorf("Release unknown err = %v, want ErrUnknownContainer", err)
	}

	// Cross-machine dataset: train on an Intel dataset with an AMD engine.
	intel := quickEngine(Intel())
	ds, err := intel.Collect(ctx, append(PaperWorkloads(),
		workloads.CorpusFrom(5, 3, []string{"flat"})...), 24)
	if err != nil {
		t.Fatal(err)
	}
	amd := quickEngine(AMD())
	if _, err := amd.Train(ctx, ds); !errors.Is(err, ErrMachineMismatch) {
		t.Errorf("cross-machine Train err = %v, want ErrMachineMismatch", err)
	}
}

// TestEngineServing drives the online Place/Release/Rebalance lifecycle:
// admissions pack the machine with disjoint pinned node sets, the machine
// eventually fills (ErrMachineFull), releases free nodes, and rebalancing
// keeps invariants while never making a container worse.
func TestEngineServing(t *testing.T) {
	ctx := context.Background()
	m := AMD()
	eng := quickEngine(m)
	ws := append(PaperWorkloads(), workloads.CorpusFrom(10, 3, []string{"flat", "bw", "lat"})...)
	ds, err := eng.Collect(ctx, ws, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(ctx, ds); err != nil {
		t.Fatal(err)
	}

	wt, _ := WorkloadByName("WTbtree")
	var admitted []*Assignment
	for {
		a, err := eng.Place(ctx, wt, 16)
		if err != nil {
			if !errors.Is(err, ErrMachineFull) {
				t.Fatalf("Place err = %v, want ErrMachineFull at capacity", err)
			}
			break
		}
		admitted = append(admitted, a)
		if len(admitted) > 8 {
			t.Fatal("admitted more containers than the machine has nodes")
		}
	}
	if len(admitted) < 2 {
		t.Fatalf("admitted %d containers, want at least 2", len(admitted))
	}
	// Node sets must be pairwise disjoint and consistent with FreeNodes.
	var used, free = admitted[0].Nodes, eng.FreeNodes()
	for _, a := range admitted[1:] {
		if used.Intersect(a.Nodes) != 0 {
			t.Fatalf("containers share nodes: %s overlaps %s", used, a.Nodes)
		}
		used = used.Union(a.Nodes)
	}
	if used.Intersect(free) != 0 {
		t.Fatalf("free set %s overlaps used %s", free, used)
	}
	if got := eng.Assignments(); len(got) != len(admitted) {
		t.Fatalf("Assignments() = %d entries, want %d", len(got), len(admitted))
	}

	// Release the first container and rebalance survivors.
	if err := eng.Release(ctx, admitted[0].ID); err != nil {
		t.Fatal(err)
	}
	before := map[int]Assignment{}
	for _, a := range eng.Assignments() {
		before[a.ID] = a
	}
	rep, err := eng.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Examined != len(admitted)-1 {
		t.Fatalf("rebalance examined %d, want %d", rep.Examined, len(admitted)-1)
	}
	// Moves must strictly improve interconnect bandwidth (same class) or
	// predicted performance, and never shrink the per-container state.
	for _, mv := range rep.Moves {
		b := before[mv.ID]
		if mv.FromNodes != b.Nodes {
			t.Fatalf("move %d: FromNodes %s != prior %s", mv.ID, mv.FromNodes, b.Nodes)
		}
		if mv.ToClass == mv.FromClass &&
			m.IC.Measure(mv.ToNodes) <= m.IC.Measure(mv.FromNodes) {
			t.Fatalf("move %d did not improve bandwidth", mv.ID)
		}
		if mv.Seconds <= 0 {
			t.Fatalf("move %d: non-positive migration time", mv.ID)
		}
	}
	// Invariants hold after rebalance.
	var used2 uint64
	for _, a := range eng.Assignments() {
		if uint64(a.Nodes)&used2 != 0 {
			t.Fatal("rebalanced containers share nodes")
		}
		used2 |= uint64(a.Nodes)
	}

	// Concurrent serving smoke under -race: parallel Place/Release churn.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				a, err := eng.Place(ctx, wt, 16)
				if err != nil {
					continue // machine full is expected under churn
				}
				_ = eng.Release(ctx, a.ID)
			}
		}()
	}
	wg.Wait()
}
