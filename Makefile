# Build / verification entry points. `make ci` mirrors the CI workflow.

GO ?= go

.PHONY: all build vet lint test race bench benchsmoke clustersmoke crashsmoke daemonsmoke walsmoke profile ci

all: build

# go vet's default analyzer suite already includes copylocks and
# structtag module-wide; the second, targeted pass pins exactly those two
# analyzers on the lock-bearing packages (the Engine, the serving
# Scheduler, the cluster Fleet and the wire Server must never be copied)
# so the guarantee survives even if the default suite is ever narrowed
# via VETFLAGS or a toolchain change.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -structtag . ./internal/sched/ ./internal/fleet/ ./internal/wire/

build:
	$(GO) build ./...

# The repo's own analyzers (cmd/numalint): lock-rank order, no blocking
# work under the fleet lock, zero-alloc hot paths, determinism in the
# simulation packages, and sentinel-wrapped error chains. Findings are
# suppressed line-by-line with //numalint:ignore <analyzer> <reason>; the
# reason is mandatory. See DESIGN.md, "Static invariants".
lint:
	$(GO) run ./cmd/numalint ./...

test:
	$(GO) test ./...

# Race coverage for every package. The detector only fires where tests
# actually exercise concurrency (Engine singleflight caches, concurrent
# fleet admissions racing machine death, the wire server's SSE fan-out,
# WAL group commit, ...), but running module-wide means a new concurrent
# package is covered the day it gains a test, with no list to maintain.
race:
	$(GO) test -race ./...

# Runs the full benchmark suite with fixed -benchtime and emits
# BENCH_9.json, then applies the gates: Engine warm-cache >= 50x, the
# compiled-forest serving AND batch paths at 0 allocs/op, every fleet
# routing policy admitting in < 1 ms with health tracking enabled, one
# online admission at <= 12 allocs/op with BenchmarkAdmitThroughput
# scaling beyond one core on multi-core recorders, the wire hot paths at
# 0 allocs/op (event publish, place-response and SSE encoders), the
# client->daemon round trip and the live loadgen p99 both under 1 ms,
# the WAL append at 0 allocs/op with a 10k-record recovery under 100 ms,
# the era-matched speedup floors (ns/op, bytes/op and allocs/op —
# against BENCH_8: EnginePlace >= 3x faster) and a > 20% regression
# check against the previous BENCH_*.json. Override the budget with
# BENCHTIME=200ms etc.
bench:
	sh scripts/bench.sh BENCH_9.json

# Deterministic fleet churn smoke: 200 containers over the AMD+Intel
# cluster at reduced training fidelity. CI runs this on every push.
clustersmoke:
	$(GO) run ./cmd/clustersim -quick

# Failure-injection smoke: the same churn trace with amd-0 crashing at
# t=600s — health probes ride the machine to dead, its tenants fail over,
# and the report must account for every record (deterministic output).
# CI runs this on every push.
crashsmoke:
	$(GO) run ./cmd/clustersim -quick -crash amd-0@600

# Wire-level end-to-end smoke: build numaplaced and loadgen, start the
# daemon on an ephemeral loopback port at reduced training fidelity,
# drive it with `loadgen -quick`, and require a clean run (zero request
# errors, zero dropped event frames) plus a graceful SIGTERM shutdown.
# CI runs this on every push.
daemonsmoke:
	sh scripts/daemonsmoke.sh

# Crash-recovery smoke: a live daemon with -data-dir is loaded, killed
# with SIGKILL while tenants are resident, and restarted on the same log;
# /v1/assignments must be byte-identical across the crash and the
# recovered state must accept a release. CI runs this on every push.
walsmoke:
	sh scripts/walsmoke.sh

# One-iteration pass over every benchmark (root plus the wire-facing
# packages): catches benchmark rot (setup errors, API drift) without
# paying for stable timings. CI runs this on every push.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -count 1 . ./internal/fleet/ ./internal/wal/ ./internal/wire/

# Emits a CPU profile of the heaviest training pipeline (the Figure 4
# cross-validation grid) for `go tool pprof repro.test cpu.prof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure4AMD' -benchtime 1x -count 1 \
		-cpuprofile cpu.prof -o repro.test .
	@echo "wrote cpu.prof (inspect with: go tool pprof repro.test cpu.prof)"

ci: vet lint build test
