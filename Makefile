# Build / verification entry points. `make ci` mirrors the CI workflow.

GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/placement/ ./internal/core/ ./internal/mlearn/ ./internal/xparallel/ ./internal/experiments/

# Runs the full benchmark suite with fixed -benchtime and emits BENCH_1.json.
# Override the budget with BENCHTIME=200ms etc.
bench:
	sh scripts/bench.sh BENCH_1.json

ci: vet build test
