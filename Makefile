# Build / verification entry points. `make ci` mirrors the CI workflow.

GO ?= go

.PHONY: all build vet test race bench ci

all: build

# go vet's default analyzer suite already includes copylocks and
# structtag module-wide; the second, targeted pass pins exactly those two
# analyzers on the lock-bearing packages (the Engine and the serving
# Scheduler must never be copied) so the guarantee survives even if the
# default suite is ever narrowed via VETFLAGS or a toolchain change.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -structtag . ./internal/sched/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage for every concurrent pipeline, including the root package
# (Engine singleflight caches, concurrent Place/Release) and the serving
# scheduler in internal/sched.
race:
	$(GO) test -race . ./internal/placement/ ./internal/core/ ./internal/mlearn/ ./internal/xparallel/ ./internal/experiments/ ./internal/sched/

# Runs the full benchmark suite with fixed -benchtime and emits
# BENCH_2.json (includes the Engine warm/cold cache benchmarks and the
# >= 50x warm-cache gate). Override the budget with BENCHTIME=200ms etc.
bench:
	sh scripts/bench.sh BENCH_2.json

ci: vet build test
