// Package client is the typed Go client for the numaplaced wire protocol.
// Callers never touch JSON or HTTP status codes: requests are plain Go
// values, failures come back as *Error carrying the stable wire code, and
// — for every code backed by an nperr sentinel — errors.Is against the
// sentinel works exactly as it does in-process:
//
//	_, err := c.Place(ctx, "gcc", 16)
//	if errors.Is(err, nperr.ErrFleetFull) { ... }
//
// Transport failures and 5xx responses are retried with exponential
// backoff (context-aware); 4xx rejections are returned immediately —
// retrying an unchanged rejected request is pointless. Note the one
// retry hazard inherent to non-idempotent admissions: a connection that
// dies after the daemon commits but before the response arrives can
// double-admit on retry. Disable retries (WithRetries(0)) when that
// matters more than availability.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/wire"
)

// Client talks to one numaplaced daemon. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times a retryable failure (transport error or
// 5xx) is retried after the first attempt; 0 disables retrying.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the initial retry backoff (doubled per attempt).
func WithBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// New builds a client for the daemon at base, e.g.
// "http://127.0.0.1:7070". Defaults: 3 retries, 10ms initial backoff, no
// overall timeout (pass a context), and a connection pool sized for many
// concurrent callers against one daemon — the stdlib default of 2 idle
// connections per host would re-dial constantly under load-generator
// concurrency and dominate observed latency.
func New(base string, opts ...Option) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 256
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Transport: tr},
		retries: 3,
		backoff: 10 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Error is a non-2xx daemon response. Unwrap exposes the nperr sentinel
// behind sentinel-backed codes, so errors.Is works across the wire.
type Error struct {
	Code     wire.ErrCode
	Status   int
	Message  string
	Report   *wire.Report // partial pass report, when the operation carries one
	sentinel error
}

func (e *Error) Error() string {
	return fmt.Sprintf("numaplaced: %s (http %d): %s", e.Code, e.Status, e.Message)
}

// Unwrap returns the nperr sentinel behind the wire code (nil for generic
// codes such as bad_request).
func (e *Error) Unwrap() error { return e.sentinel }

// retryable reports whether a response status merits a retry: only 5xx —
// the daemon uses 503 for "no healthy backend, back off", and 4xx means
// the request itself is the problem.
func retryable(status int) bool { return status >= 500 }

// do runs one request with retry; body may be nil for GETs. The decoded
// 2xx body lands in out (skipped when out is nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding %s %s: %w", method, path, err)
		}
	}
	backoff := c.backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			// Transport failure (refused, reset, broken pipe): retryable.
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
		} else {
			done, err := c.consume(resp, method, path, out)
			if done {
				return err
			}
			lastErr = err // retryable 5xx, decoded into *Error
		}
		if attempt >= c.retries {
			return lastErr
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// consume decodes one response; done=false means the caller should retry.
func (c *Client) consume(resp *http.Response, method, path string, out any) (done bool, err error) {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return true, nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return true, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
		return true, nil
	}
	var eb wire.ErrorBody
	werr := &Error{Status: resp.StatusCode, Code: wire.CodeInternal}
	if derr := json.NewDecoder(resp.Body).Decode(&eb); derr == nil && eb.Error.Code != "" {
		werr.Code = eb.Error.Code
		werr.Message = eb.Error.Message
		werr.Report = eb.Error.Report
		werr.sentinel = wire.SentinelFor(eb.Error.Code)
	} else {
		werr.Message = fmt.Sprintf("http %d with undecodable body", resp.StatusCode)
	}
	return !retryable(resp.StatusCode), werr
}

// Place admits one container of the named workload and returns its
// fleet-wide handle and concrete assignment.
func (c *Client) Place(ctx context.Context, workload string, vcpus int) (*wire.PlaceResponse, error) {
	var out wire.PlaceResponse
	if err := c.do(ctx, http.MethodPost, "/v1/place", wire.PlaceRequest{Workload: workload, VCPUs: vcpus}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Release evicts a placed container by its fleet-wide ID.
func (c *Client) Release(ctx context.Context, id int) error {
	return c.do(ctx, http.MethodPost, "/v1/release", wire.ReleaseRequest{ID: id}, nil)
}

// Rebalance runs one fleet-wide rebalance pass under a migration-seconds
// budget (<= 0: unbudgeted).
func (c *Client) Rebalance(ctx context.Context, budgetSeconds float64) (*wire.Report, error) {
	var out wire.Report
	if err := c.do(ctx, http.MethodPost, "/v1/rebalance", wire.RebalanceRequest{BudgetSeconds: budgetSeconds}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Drain moves every tenant off the named backend and closes it to
// admissions.
func (c *Client) Drain(ctx context.Context, backend string) (*wire.Report, error) {
	var out wire.Report
	if err := c.do(ctx, http.MethodPost, "/v1/drain", wire.BackendRequest{Backend: backend}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Resume reopens a drained backend for admissions.
func (c *Client) Resume(ctx context.Context, backend string) error {
	return c.do(ctx, http.MethodPost, "/v1/resume", wire.BackendRequest{Backend: backend}, nil)
}

// Heartbeat records one answered probe and returns the backend's health.
func (c *Client) Heartbeat(ctx context.Context, backend string) (string, error) {
	var out wire.HealthResponse
	if err := c.do(ctx, http.MethodPost, "/v1/heartbeat", wire.BackendRequest{Backend: backend}, &out); err != nil {
		return "", err
	}
	return out.Health, nil
}

// MissProbe records one missed probe; if it triggered the dead transition
// the response carries the automatic failover report.
func (c *Client) MissProbe(ctx context.Context, backend string) (*wire.HealthResponse, error) {
	var out wire.HealthResponse
	if err := c.do(ctx, http.MethodPost, "/v1/missprobe", wire.BackendRequest{Backend: backend}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fail declares a backend dead immediately and returns the failover report.
func (c *Client) Fail(ctx context.Context, backend string) (*wire.Report, error) {
	var out wire.Report
	if err := c.do(ctx, http.MethodPost, "/v1/fail", wire.BackendRequest{Backend: backend}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Failover retries stranded tenants of a dead backend under a budget.
func (c *Client) Failover(ctx context.Context, backend string, budgetSeconds float64) (*wire.Report, error) {
	var out wire.Report
	if err := c.do(ctx, http.MethodPost, "/v1/failover", wire.FailoverRequest{Backend: backend, BudgetSeconds: budgetSeconds}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Revive readmits a dead backend, returning how many stale engine-side
// records were fenced.
func (c *Client) Revive(ctx context.Context, backend string) (int, error) {
	var out wire.ReviveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/revive", wire.BackendRequest{Backend: backend}, &out); err != nil {
		return 0, err
	}
	return out.Fenced, nil
}

// Stats fetches the fleet-wide snapshot.
func (c *Client) Stats(ctx context.Context) (*wire.Stats, error) {
	var out wire.Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Assignments lists every live admission.
func (c *Client) Assignments(ctx context.Context) ([]wire.PlaceResponse, error) {
	var out wire.AssignmentsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/assignments", nil, &out); err != nil {
		return nil, err
	}
	return out.Assignments, nil
}

// LogHead reads the daemon's durability position: last logged sequence,
// newest snapshot, and what boot-time recovery replayed. Persistent is
// false when the daemon runs without a write-ahead log.
func (c *Client) LogHead(ctx context.Context) (*wire.LogHead, error) {
	var out wire.LogHead
	if err := c.do(ctx, http.MethodGet, "/v1/log/head", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshot forces a checkpoint and returns the sequence it covers.
// Against a daemon without persistence the error satisfies
// errors.Is(err, nperr.ErrLogClosed).
func (c *Client) Snapshot(ctx context.Context) (uint64, error) {
	var out wire.SnapshotResponse
	if err := c.do(ctx, http.MethodPost, "/v1/snapshot", nil, &out); err != nil {
		return 0, err
	}
	return out.Seq, nil
}

// HealthOf reads one backend's health state.
func (c *Client) HealthOf(ctx context.Context, backend string) (string, error) {
	var out wire.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/health/"+backend, nil, &out); err != nil {
		return "", err
	}
	return out.Health, nil
}

// Healthz checks daemon liveness (readiness polls).
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz: http %d", resp.StatusCode)
	}
	return nil
}
