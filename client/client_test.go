package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nperr"
	"repro/internal/wire"
)

// flaky serves failures until succeedAfter attempts have been burned.
func flaky(t *testing.T, status int, body string, succeedAfter int32) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= succeedAfter {
			w.WriteHeader(status)
			w.Write([]byte(body))
			return
		}
		w.Write([]byte(`{"backends":null,"domains":null,"tenants":0}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &attempts
}

// TestRetryOn5xx: transient 5xx responses are retried with backoff until
// success.
func TestRetryOn5xx(t *testing.T) {
	srv, attempts := flaky(t, http.StatusInternalServerError,
		`{"error":{"code":"internal","status":500,"message":"transient"}}`, 2)
	c := New(srv.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("stats after retries: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + success)", got)
	}
}

// TestRetryExhaustion: a persistent 5xx surfaces the decoded wire error
// after retries run out.
func TestRetryExhaustion(t *testing.T) {
	srv, attempts := flaky(t, http.StatusServiceUnavailable,
		`{"error":{"code":"no_healthy_backend","status":503,"message":"all dead"}}`, 1000)
	c := New(srv.URL, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := c.Stats(context.Background())
	if !errors.Is(err, nperr.ErrNoHealthyBackend) {
		t.Fatalf("exhausted retries: %v, want ErrNoHealthyBackend", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (initial + 2 retries)", got)
	}
}

// TestNoRetryOn4xx: rejections are terminal — retrying an unchanged
// request would just repeat the answer (and distort load-test rejection
// accounting).
func TestNoRetryOn4xx(t *testing.T) {
	srv, attempts := flaky(t, http.StatusConflict,
		`{"error":{"code":"fleet_full","status":409,"message":"full"}}`, 1000)
	c := New(srv.URL, WithRetries(5), WithBackoff(time.Millisecond))
	_, err := c.Place(context.Background(), "gcc", 4)
	if !errors.Is(err, nperr.ErrFleetFull) {
		t.Fatalf("rejection: %v, want ErrFleetFull", err)
	}
	var werr *Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeFleetFull {
		t.Fatalf("wire detail: %+v", werr)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1 (no retry on 409)", got)
	}
}

// TestRetryOnConnectionError: a refused connection is retried; pointing at
// a dead port with a canceled deadline surfaces the transport error.
func TestRetryOnConnectionError(t *testing.T) {
	// Grab a port and close it so connections are refused.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := srv.URL
	srv.Close()

	c := New(addr, WithRetries(2), WithBackoff(time.Millisecond))
	start := time.Now()
	err := c.Release(context.Background(), 1)
	if err == nil {
		t.Fatal("release against a closed port should fail")
	}
	// 2 retries with 1ms/2ms backoff: the elapsed time shows the backoff
	// loop actually ran rather than bailing on the first dial failure.
	if time.Since(start) < 3*time.Millisecond {
		t.Fatalf("returned too fast for 2 backoff rounds: %v (%v)", time.Since(start), err)
	}
}

// TestRetryHonorsContext: cancellation cuts the backoff loop short.
func TestRetryHonorsContext(t *testing.T) {
	srv, _ := flaky(t, http.StatusInternalServerError,
		`{"error":{"code":"internal","status":500,"message":"transient"}}`, 1000)
	c := New(srv.URL, WithRetries(100), WithBackoff(50*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Stats(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("context cancellation ignored: took %v", time.Since(start))
	}
}
