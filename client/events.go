// Streaming decoder for the /v1/events Server-Sent-Events feed.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/wire"
)

// Event re-exports the wire event for callers that only import client.
type Event = wire.Event

// EventStream is one open /v1/events subscription. Next decodes frames in
// order; Close tears the stream down (also unblocking a concurrent Next).
type EventStream struct {
	body io.ReadCloser
	br   *bufio.Reader
}

// Events opens the daemon's event stream. Events published before the
// stream opens are not replayed. The stream ends — Next returns an error —
// when ctx is done, Close is called, or the daemon shuts down. Opening is
// not retried: a streaming subscription that silently reconnected would
// hide the gap in the event sequence.
func (c *Client) Events(ctx context.Context) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: opening event stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("client: opening event stream: http %d", resp.StatusCode)
	}
	return &EventStream{body: resp.Body, br: bufio.NewReader(resp.Body)}, nil
}

// Next blocks for the next event frame. The synthetic backpressure frame
// arrives as Type "dropped" with the Dropped count set — the daemon-side
// subscription lost that many events to a slow read loop. io.EOF (possibly
// wrapped) reports a cleanly closed stream.
func (s *EventStream) Next() (Event, error) {
	var ev Event
	var evType string
	var data []byte
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			if err == io.EOF && line == "" && data == nil && evType == "" {
				return ev, io.EOF
			}
			return ev, fmt.Errorf("client: reading event stream: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if data == nil {
				continue // heartbeat or comment-only frame: keep reading
			}
			if err := json.Unmarshal(data, &ev); err != nil {
				return ev, fmt.Errorf("client: decoding event %q: %w", data, err)
			}
			if ev.Type == "" {
				ev.Type = evType
			}
			return ev, nil
		case strings.HasPrefix(line, ":"):
			// comment frame (stream hello)
		case strings.HasPrefix(line, "event: "):
			evType = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
}

// Close tears down the stream.
func (s *EventStream) Close() error { return s.body.Close() }
