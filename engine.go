package numaplace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/concern"
	"repro/internal/core"
	"repro/internal/migrate"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/xparallel"
	"repro/internal/xrand"
)

// Engine is the long-lived, concurrency-safe serving layer over the
// paper's pipeline for one machine. It memoizes the expensive artifacts —
// the concern spec, important-placement enumerations keyed by (machine
// fingerprint, vCPU count), pinnings, and trained predictors — behind
// singleflight caches, so concurrent callers share one computation instead
// of repeating it, and every result is bit-identical to the corresponding
// free-function pipeline. On top of the batch lifecycle (Placements, Pin,
// Collect, Train, Predict) it serves an incremental admit/evict scheduler:
// Place, Release and Rebalance.
//
// All methods are safe for concurrent use. Methods returning cached slices
// hand each caller its own copy of the slice header; the Important values
// inside are shared and must be treated as read-only.
//
// An Engine must not be copied after first use (it contains locks; go vet's
// copylocks check enforces this).
type Engine struct {
	machine Machine
	fp      uint64
	spec    *Spec

	seed       uint64
	collectCfg CollectConfig
	trainCfg   TrainConfig
	serveCfg   ServeConfig

	// The artifact caches are sync.Maps: the serving path reads them on
	// every admission (placements and the predictor registry once per
	// Place, pinnings once per commit), so lookups must not serialize on a
	// mutex. Writes are rare — one per cold enumeration, pinning or
	// (re)training — and singleflight coordination for enumerations still
	// runs under mu.
	mu         sync.Mutex
	flight     map[uint64]*flightCall
	placements sync.Map // uint64 -> []Important
	pinnings   sync.Map // pinKey -> []topology.ThreadID
	predictors sync.Map // int -> *Predictor
	scheduler  atomic.Pointer[sched.Scheduler]
	schedOnce  sync.Once

	enumerations  atomic.Int64
	placementHits atomic.Int64
	pinRuns       atomic.Int64
	pinHits       atomic.Int64
}

// flightCall is one in-flight enumeration shared by concurrent callers.
type flightCall struct {
	done chan struct{}
	val  []Important
	err  error
}

// pinKey identifies one memoized pinning. Placements carry at most a
// couple of per-node concern scores on every supported machine; larger
// (hand-built) score lists bypass the cache.
type pinKey struct {
	v      int
	nodes  topology.NodeSet
	nscore int
	scores [4]int
}

// Serving-layer types, re-exported from internal/sched.
type (
	// ServeConfig tunes the online admit/evict scheduler.
	ServeConfig = sched.ServeConfig
	// Assignment describes one admitted container.
	Assignment = sched.Assignment
	// RebalanceReport summarizes one Rebalance pass.
	RebalanceReport = sched.RebalanceReport
	// RebalanceMove records one container migration during Rebalance.
	RebalanceMove = sched.RebalanceMove
	// PlacePreview estimates the admission Place would make right now.
	PlacePreview = sched.Preview
	// RestoreRecord is one committed admission as recorded by a fleet
	// write-ahead log, replayed through Adopt.
	RestoreRecord = sched.Restore
)

// Option configures an Engine at construction.
type Option func(*Engine)

// WithParallelism bounds the worker pool used by enumeration, training and
// the experiment drivers. The pool is shared process-wide (results are
// bit-identical at every setting), so this is a convenience spelling of
// SetParallelism, NOT per-Engine state: the last engine constructed with
// the option wins, the setting affects every engine and free function,
// and it outlives the engine. Programs tuning several engines should
// call SetParallelism once instead. n <= 0 selects GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(*Engine) { xparallel.SetMaxWorkers(n) }
}

// WithSeed sets the default RNG seed used when a TrainConfig without a
// seed is applied (default 1). All stochastic components derive their
// streams deterministically from it.
func WithSeed(seed uint64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithPredictor registers a trained predictor for the given container
// size, e.g. one loaded from disk with LoadPredictor. Place and Predict
// consult the registry.
func WithPredictor(vcpus int, p *Predictor) Option {
	return func(e *Engine) { e.predictors.Store(vcpus, p) }
}

// WithCollectConfig sets the ground-truth collection configuration used by
// Engine.Collect.
func WithCollectConfig(cfg CollectConfig) Option {
	return func(e *Engine) { e.collectCfg = cfg }
}

// WithTrainConfig sets the training configuration used by Engine.Train.
func WithTrainConfig(cfg TrainConfig) Option {
	return func(e *Engine) { e.trainCfg = cfg }
}

// WithServeConfig tunes the online scheduler (performance goal fraction,
// headroom, migration mechanism parameters).
func WithServeConfig(cfg ServeConfig) Option {
	return func(e *Engine) { e.serveCfg = cfg }
}

// New builds an Engine for the machine. The concern specification is
// derived immediately (it is cheap); everything expensive is computed
// lazily, once, on first use.
func New(m Machine, opts ...Option) *Engine {
	e := &Engine{
		machine: m,
		fp:      m.Fingerprint(),
		seed:    1,
		flight:  map[uint64]*flightCall{},
	}
	for _, opt := range opts {
		opt(e)
	}
	e.spec = concern.FromMachine(m)
	return e
}

// Machine returns the machine this Engine serves.
func (e *Engine) Machine() Machine { return e.machine }

// Fingerprint returns the machine's structural fingerprint (the cache key
// prefix for this Engine's artifacts).
func (e *Engine) Fingerprint() uint64 { return e.fp }

// Spec returns the machine's concern specification (Step 1). The returned
// value is shared and must be treated as read-only.
func (e *Engine) Spec() *Spec { return e.spec }

// Placements returns the machine's important placements for a container
// size (Step 2). The first call per vCPU count enumerates; concurrent
// callers of the same key join the in-flight computation (singleflight)
// and later calls hit the cache. The returned slice is the caller's own;
// its elements are shared and read-only.
func (e *Engine) Placements(ctx context.Context, vcpus int) ([]Important, error) {
	imps, err := e.placementsShared(ctx, e.spec, vcpus)
	if err != nil {
		return nil, err
	}
	out := make([]Important, len(imps))
	copy(out, imps)
	return out, nil
}

// placementsShared returns the cached enumeration without copying. spec
// must be this machine's specification (or an equivalent one).
func (e *Engine) placementsShared(ctx context.Context, spec *Spec, vcpus int) ([]Important, error) {
	key := xrand.Mix2(e.fp, uint64(vcpus))

	for {
		// Lock-free fast path: every admission resolves its enumeration
		// here, so the cache hit must not serialize on e.mu.
		if imps, ok := e.placements.Load(key); ok {
			e.placementHits.Add(1)
			return imps.([]Important), nil
		}
		e.mu.Lock()
		if imps, ok := e.placements.Load(key); ok {
			e.mu.Unlock()
			e.placementHits.Add(1)
			return imps.([]Important), nil
		}
		if c, ok := e.flight[key]; ok {
			e.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil {
				e.placementHits.Add(1)
				return c.val, nil
			}
			// The flight leader failed. If it failed because *its* context
			// was cancelled while ours is still live, retry (and possibly
			// become the new leader) instead of inheriting a stranger's
			// cancellation; genuine errors propagate to every waiter.
			if ctx.Err() == nil &&
				(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				continue
			}
			return nil, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		e.flight[key] = c
		e.mu.Unlock()

		e.enumerations.Add(1)
		c.val, c.err = placement.EnumerateCtx(ctx, spec, vcpus)

		e.mu.Lock()
		delete(e.flight, key)
		if c.err == nil {
			e.placements.Store(key, c.val)
		}
		e.mu.Unlock()
		close(c.done)
		// Failures (including cancellation) are not cached: the next
		// caller retries the enumeration.
		return c.val, c.err
	}
}

// Pin materializes a placement into a vCPU-to-hardware-thread assignment,
// memoizing the result per (placement, vCPU count). The returned slice is
// the caller's own copy.
func (e *Engine) Pin(ctx context.Context, p Placement, vcpus int) ([]topology.ThreadID, error) {
	return e.pinFor(ctx, e.spec, p, vcpus)
}

func (e *Engine) pinFor(ctx context.Context, spec *Spec, p Placement, vcpus int) ([]topology.ThreadID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, ok := pinKeyOf(p, vcpus)
	if ok {
		if cached, hit := e.pinnings.Load(key); hit {
			e.pinHits.Add(1)
			return append([]topology.ThreadID(nil), cached.([]topology.ThreadID)...), nil
		}
	}
	e.pinRuns.Add(1)
	threads, err := placement.Pin(spec, p, vcpus)
	if err != nil {
		return nil, err
	}
	if ok {
		e.pinnings.Store(key, threads)
	}
	return append([]topology.ThreadID(nil), threads...), nil
}

func pinKeyOf(p Placement, vcpus int) (pinKey, bool) {
	if len(p.PerNodeScores) > len(pinKey{}.scores) {
		return pinKey{}, false
	}
	k := pinKey{v: vcpus, nodes: p.Nodes, nscore: len(p.PerNodeScores)}
	for i, s := range p.PerNodeScores {
		k.scores[i] = s
	}
	return k, true
}

// Collect measures every workload in every important placement (Step 3's
// training runs), reusing the Engine's memoized enumeration. The
// collection honours ctx: cancellation between measurement cells returns
// ctx.Err() promptly.
func (e *Engine) Collect(ctx context.Context, ws []Workload, vcpus int) (*Dataset, error) {
	return e.collectWith(ctx, ws, vcpus, e.collectCfg)
}

func (e *Engine) collectWith(ctx context.Context, ws []Workload, vcpus int, cfg CollectConfig) (*Dataset, error) {
	imps, err := e.placementsShared(ctx, e.spec, vcpus)
	if err != nil {
		return nil, err
	}
	return core.CollectPrepared(ctx, e.spec, imps, ws, vcpus, cfg)
}

// Train fits a predictor on the dataset (Step 3) using the Engine's
// training configuration and registers it for the dataset's container
// size, making it available to Predict and Place. Datasets collected on a
// different machine (or lacking one) fail with ErrMachineMismatch.
// Training honours ctx throughout the placement-pair search and
// cross-validation. A zero TrainConfig.Seed in the Engine's configuration
// is replaced by the WithSeed default.
func (e *Engine) Train(ctx context.Context, ds *Dataset) (*Predictor, error) {
	cfg := e.trainCfg
	if cfg.Seed == 0 {
		cfg.Seed = e.seed
	}
	return e.trainWith(ctx, ds, cfg)
}

// trainWith trains with cfg exactly as given — no seed defaulting, so the
// deprecated free-function wrapper reproduces the stateless Train
// bit-for-bit (including its Seed 0).
func (e *Engine) trainWith(ctx context.Context, ds *Dataset, cfg TrainConfig) (*Predictor, error) {
	if ds.Machine.Topo == nil || ds.Machine.IC == nil || ds.Machine.Fingerprint() != e.fp {
		return nil, fmt.Errorf("numaplace: dataset was not collected on %s: %w",
			e.machine.Topo.Name, ErrMachineMismatch)
	}
	pred, err := core.TrainCtx(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	// Compile the forest before the predictor becomes visible to the
	// serving paths: the flat inference representation is otherwise built
	// lazily, and the first Place/Predict should not pay it.
	pred.Compile()
	e.predictors.Store(ds.V, pred)
	return pred, nil
}

// UsePredictor registers a trained predictor for a container size (e.g.
// one loaded with LoadPredictor), replacing any previous registration.
// The predictor is compiled for serving if it was not already.
func (e *Engine) UsePredictor(vcpus int, p *Predictor) {
	p.Compile()
	e.predictors.Store(vcpus, p)
}

// Predictor returns the registered predictor for a container size, or
// false if none has been trained or registered.
func (e *Engine) Predictor(vcpus int) (*Predictor, bool) {
	p, ok := e.predictors.Load(vcpus)
	if !ok {
		return nil, false
	}
	return p.(*Predictor), true
}

func (e *Engine) predictorOrNil(vcpus int) *core.Predictor {
	p, _ := e.Predictor(vcpus)
	return p
}

// Predict returns the predicted performance vector for a container of the
// given size from its observed throughput in the registered predictor's
// Base and Probe placements (Step 4). It fails with ErrUntrained when no
// predictor covers vcpus.
func (e *Engine) Predict(vcpus int, perfBase, perfProbe float64) ([]float64, error) {
	p, ok := e.Predictor(vcpus)
	if !ok {
		return nil, fmt.Errorf("numaplace: predicting for %d vCPUs: %w", vcpus, ErrUntrained)
	}
	return p.Predict(perfBase, perfProbe)
}

// PredictInto is the allocation-free Predict for serving loops: it writes
// the predicted vector into dst, which must have one entry per important
// placement (len = Predictor.NumPlacements). Inference runs on the
// predictor's compiled forest and performs no allocations per call.
func (e *Engine) PredictInto(dst []float64, vcpus int, perfBase, perfProbe float64) error {
	p, ok := e.Predictor(vcpus)
	if !ok {
		return fmt.Errorf("numaplace: predicting for %d vCPUs: %w", vcpus, ErrUntrained)
	}
	return p.PredictInto(dst, perfBase, perfProbe)
}

// serving returns the lazily built online scheduler. The built scheduler
// is read through an atomic pointer so the admission path (Place, Release,
// Preview) never serializes on e.mu just to find it.
func (e *Engine) serving() *sched.Scheduler {
	if s := e.scheduler.Load(); s != nil {
		return s
	}
	e.schedOnce.Do(func() {
		e.scheduler.Store(sched.NewScheduler(e.spec,
			func(ctx context.Context, v int) ([]Important, error) {
				return e.placementsShared(ctx, e.spec, v)
			},
			e.predictorOrNil,
			func(ctx context.Context, p Placement, v int) ([]topology.ThreadID, error) {
				return e.pinFor(ctx, e.spec, p, v)
			},
			e.serveCfg))
	})
	return e.scheduler.Load()
}

// Place admits one container of workload w with the given vCPU count into
// the machine: observe it in the predictor's two input placements, predict
// its full performance vector, and pin it to the cheapest placement class
// that meets the configured goal on the best free nodes. It fails with
// ErrUntrained without a predictor for vcpus, and ErrMachineFull when the
// free nodes cannot host the container.
func (e *Engine) Place(ctx context.Context, w Workload, vcpus int) (*Assignment, error) {
	return e.serving().Admit(ctx, w, vcpus)
}

// Preview estimates the admission Place would make for a container of
// workload w right now — the chosen class and its predicted performance
// against the current free nodes — without reserving anything. Cluster
// routing (the BestPredicted policy) previews a container on every machine
// to admit it where the model promises the most. Previews draw a
// deterministic observation-noise stream from the workload identity, so
// they are repeatable and leave subsequent admissions bit-identical.
func (e *Engine) Preview(ctx context.Context, w Workload, vcpus int) (*PlacePreview, error) {
	return e.serving().Preview(ctx, w, vcpus)
}

// Release evicts a previously placed container and returns its nodes to
// the free pool. Unknown IDs fail with ErrUnknownContainer.
func (e *Engine) Release(ctx context.Context, id int) error {
	return e.serving().Release(ctx, id)
}

// Rebalance re-plans every admitted container against the nodes freed by
// departures, migrating (with the paper's fast mechanism, cost-accounted
// in the report) those that can now run in a strictly better placement.
func (e *Engine) Rebalance(ctx context.Context) (*RebalanceReport, error) {
	return e.serving().Rebalance(ctx)
}

// Assignments returns a snapshot of all currently placed containers in
// admission order.
func (e *Engine) Assignments() []Assignment {
	return e.serving().Assignments()
}

// Assignment returns the current assignment of one placed container by
// its Engine-local ID; ok is false for IDs the Engine is not serving. The
// cluster layer uses it to resolve individual fleet-wide IDs without
// snapshotting every tenant.
func (e *Engine) Assignment(id int) (Assignment, bool) {
	return e.serving().Assignment(id)
}

// FreeNodes returns the node set not allocated to any placed container.
func (e *Engine) FreeNodes() topology.NodeSet {
	return e.serving().Free()
}

// Adopt installs one previously committed admission during recovery
// replay: the recorded placement decision is taken as decided and the
// derived artifacts (prediction vector, goal, thread pinning) are
// recomputed deterministically, so the adopted tenant is bit-identical to
// the one the original Place produced. See sched.Scheduler.Adopt.
func (e *Engine) Adopt(ctx context.Context, r RestoreRecord) (*Assignment, error) {
	return e.serving().Adopt(ctx, r)
}

// ApplyMove re-pins an admitted container to a previously committed
// intra-machine rebalance decision without re-running the move search.
// See sched.Scheduler.ApplyMove.
func (e *Engine) ApplyMove(ctx context.Context, id, classID int, nodes topology.NodeSet) error {
	return e.serving().ApplyMove(ctx, id, classID, nodes)
}

// NewPackingExperiment builds a §7 packing experiment (Figure 5) for one
// workload, reusing the Engine's memoized spec and enumeration. A nil pred
// uses the predictor registered for vcpus, if any (non-ML policies run
// without one).
func (e *Engine) NewPackingExperiment(ctx context.Context, w Workload, vcpus int, pred *Predictor) (*PackingExperiment, error) {
	if pred == nil {
		pred, _ = e.Predictor(vcpus)
	}
	return e.newExperiment(ctx, w, vcpus, pred)
}

func (e *Engine) newExperiment(ctx context.Context, w Workload, vcpus int, pred *Predictor) (*PackingExperiment, error) {
	imps, err := e.placementsShared(ctx, e.spec, vcpus)
	if err != nil {
		return nil, err
	}
	return sched.NewExperimentPrepared(e.spec, imps, w, vcpus, pred)
}

// Migrate simulates one container migration (§7, Table 2), honouring ctx.
func (e *Engine) Migrate(ctx context.Context, p MigrationProfile, mech migrate.Mechanism, cfg migrate.Config) (*migrate.Result, error) {
	return migrate.RunCtx(ctx, p, mech, cfg)
}

// EngineStats reports the Engine's cache effectiveness.
type EngineStats struct {
	// Enumerations is the number of cold placement enumerations actually
	// executed; PlacementHits the calls served from cache or by joining
	// an in-flight enumeration.
	Enumerations  int64
	PlacementHits int64
	// PinRuns / PinHits are the same split for pinning requests.
	PinRuns int64
	PinHits int64
}

// Stats returns a snapshot of the Engine's cache counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Enumerations:  e.enumerations.Load(),
		PlacementHits: e.placementHits.Load(),
		PinRuns:       e.pinRuns.Load(),
		PinHits:       e.pinHits.Load(),
	}
}

// placementsForSpec backs the deprecated free functions: it uses the
// Engine's caches when the caller's spec is this machine's own derived
// specification (the overwhelmingly common case) and falls back to a
// direct, uncached enumeration for hand-modified specs.
func (e *Engine) placementsForSpec(ctx context.Context, spec *Spec, vcpus int) ([]Important, error) {
	if e.specUsable(spec) {
		imps, err := e.placementsShared(ctx, spec, vcpus)
		if err != nil {
			return nil, err
		}
		out := make([]Important, len(imps))
		copy(out, imps)
		return out, nil
	}
	return placement.EnumerateCtx(ctx, spec, vcpus)
}

func (e *Engine) pinForSpec(ctx context.Context, spec *Spec, p Placement, vcpus int) ([]topology.ThreadID, error) {
	if e.specUsable(spec) {
		return e.pinFor(ctx, spec, p, vcpus)
	}
	return placement.Pin(spec, p, vcpus)
}

// specUsable reports whether spec is interchangeable with the Engine's own
// derived specification. The verdict is deliberately NOT memoized by
// pointer: SpecFor's result is documented as safe to modify, so a spec
// that was equivalent on one call may be customized before the next —
// every call re-verifies against the spec's current contents (a handful
// of integer compares plus pairwise Score probes, trivial next to even a
// cached enumeration's slice copy).
func (e *Engine) specUsable(spec *Spec) bool {
	if spec == e.spec {
		return true
	}
	return specEquivalent(spec, e.spec)
}

// specEquivalent compares the enumeration-relevant content of two specs.
// Pareto concerns carry score functions, which cannot be compared as
// values; instead their Score functions are probed behaviorally on every
// node pair and on the full node set. Pairwise scores fully determine any
// additive measure (interconnect.Measure, the only kind FromMachine
// installs), so for machine-derived specs the comparison is exact; an
// exotic non-additive custom Score that agrees on all probes is treated
// as equivalent.
func specEquivalent(a, b *Spec) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Machine.Topo == nil || a.Machine.IC == nil {
		return false // hand-built spec without a machine description
	}
	if a.Machine.Fingerprint() != b.Machine.Fingerprint() {
		return false
	}
	if (a.Node == nil) != (b.Node == nil) || (a.Node != nil && *a.Node != *b.Node) {
		return false
	}
	if len(a.PerNode) != len(b.PerNode) || len(a.Pareto) != len(b.Pareto) {
		return false
	}
	for i := range a.PerNode {
		if *a.PerNode[i] != *b.PerNode[i] {
			return false
		}
	}
	n := b.Machine.Topo.NumNodes
	for i := range a.Pareto {
		as, bs := a.Pareto[i].Score, b.Pareto[i].Score
		if as == nil || bs == nil {
			return false
		}
		if as(topology.FullNodeSet(n)) != bs(topology.FullNodeSet(n)) {
			return false
		}
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				s := topology.NewNodeSet(topology.NodeID(x), topology.NodeID(y))
				if as(s) != bs(s) {
					return false
				}
			}
		}
	}
	return true
}

// defaultEngines registers one shared Engine per machine fingerprint for
// the deprecated free functions, so legacy call sites transparently share
// the same caches as first-party Engine users.
var (
	defaultEngines      sync.Map // uint64 -> *Engine
	defaultEngineCount  atomic.Int64
	defaultEngineBounds = int64(64)
)

// DefaultEngine returns the process-wide shared Engine for the machine,
// creating it on first use. The deprecated free functions delegate to it.
// Machines beyond a small registry bound (a safeguard against fingerprint
// churn from synthetic machine sweeps) get a fresh, unregistered Engine.
func DefaultEngine(m Machine) *Engine {
	fp := m.Fingerprint()
	if v, ok := defaultEngines.Load(fp); ok {
		return v.(*Engine)
	}
	e := New(m)
	if defaultEngineCount.Load() >= defaultEngineBounds {
		return e
	}
	if v, loaded := defaultEngines.LoadOrStore(fp, e); loaded {
		return v.(*Engine)
	}
	defaultEngineCount.Add(1)
	return e
}
