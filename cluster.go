package numaplace

import (
	"context"

	"repro/internal/fleet"
)

// Cluster is the fleet serving layer: a concurrency-safe set of named
// Engines over heterogeneous machines behind one routing policy. The
// paper's model places containers on a single NUMA box; its §3 target
// environment is a datacenter operator packing containers across many —
// Cluster supplies that layer, routing each admission to a machine per the
// configured policy, rebalancing tenants across machines under a
// migration-seconds budget (cross-machine moves are modeled as
// fast-mechanism memory copies), and draining machines gracefully for
// removal.
//
//	cl := numaplace.NewCluster(numaplace.ClusterConfig{Policy: numaplace.RouteBestPredicted})
//	cl.Add("amd-0", amdEngine)       // engines trained separately, any machines
//	cl.Add("intel-0", intelEngine)
//	a, _ := cl.Place(ctx, workload, 16)   // routed to the best machine
//	cl.Rebalance(ctx, 120)                // re-pack, spending <= 120 migration-seconds
//	cl.Drain(ctx, "amd-0")                // rehome tenants, stop admissions
//	cl.Remove("amd-0")                    // detach the emptied machine
//	cl.Release(ctx, a.ID)
//
// Lock ordering: the cluster lock is always taken before any Engine lock
// and Engines never call back into the cluster, so the order is
// one-directional. Place holds no cluster-wide lock across Engine calls
// (admissions on distinct machines run in parallel); Rebalance and Drain
// are atomic fleet-wide passes — concurrent admissions wait rather than
// interleave with a half-applied re-packing.
type Cluster struct {
	f *fleet.Fleet
}

// Cluster-layer types and policies, re-exported from internal/fleet.
type (
	// ClusterConfig tunes a Cluster (routing policy, drain threshold,
	// migration-cost model).
	ClusterConfig = fleet.Config
	// ClusterPolicy selects how Place routes admissions.
	ClusterPolicy = fleet.Policy
	// ClusterAssignment describes one fleet admission: the fleet-wide
	// container ID, the serving machine, and its local assignment.
	ClusterAssignment = fleet.Admission
	// ClusterReport summarizes one cluster Rebalance or Drain pass.
	ClusterReport = fleet.Report
	// ClusterMove records one cross-machine migration.
	ClusterMove = fleet.Move
	// ClusterStats aggregates fleet counters and per-machine occupancy.
	ClusterStats = fleet.Stats
	// ClusterBackendStats is one machine's slice of ClusterStats, health
	// state and failure-domain label included.
	ClusterBackendStats = fleet.BackendStats
	// ClusterDomainStats aggregates occupancy per failure domain.
	ClusterDomainStats = fleet.DomainStats
	// ClusterAddOption configures one machine at Add time (see InDomain).
	ClusterAddOption = fleet.AddOption
	// ClusterHealth is one machine's liveness state (ClusterHealthy,
	// ClusterSuspect, ClusterDead) as tracked by the cluster.
	ClusterHealth = fleet.Health
	// ClusterHealthConfig tunes the health state machine: probe-miss
	// thresholds for the healthy→suspect→dead transitions and the
	// migration budget of the automatic failover pass.
	ClusterHealthConfig = fleet.HealthConfig
	// ClusterMonitor drives the health state machine from periodic
	// liveness probes (see Cluster.Monitor).
	ClusterMonitor = fleet.Monitor
	// ClusterMonitorConfig tunes a monitor loop: probe cadence, probe
	// function, transition/rejoin callbacks.
	ClusterMonitorConfig = fleet.MonitorConfig
	// ClusterProbeFunc answers one liveness probe: true = responded.
	ClusterProbeFunc = fleet.ProbeFunc
	// TimerSource abstracts the monitor's clock: SimTimers for
	// deterministic simulation, WallTimers for live deployments.
	TimerSource = fleet.TimerSource
	// SimTimers schedules monitor ticks on a discrete-event simulation.
	SimTimers = fleet.SimTimers
	// WallTimers schedules monitor ticks on the wall clock.
	WallTimers = fleet.WallTimers
	// ClusterEvent is one serving-plane happening (admission, release,
	// move, health transition, pass summary) from the event feed.
	ClusterEvent = fleet.Event
	// ClusterEventType discriminates ClusterEvents.
	ClusterEventType = fleet.EventType
	// ClusterSubscription is one bounded subscriber of the event feed:
	// events buffer in a fixed ring, the oldest dropped (and counted) when
	// the subscriber falls behind — publishing never blocks admissions.
	ClusterSubscription = fleet.Subscription
)

// Event types for ClusterEvent.Type.
const (
	EventPlace     = fleet.EvPlace
	EventRelease   = fleet.EvRelease
	EventMove      = fleet.EvMove
	EventHealth    = fleet.EvHealth
	EventFailover  = fleet.EvFailover
	EventRebalance = fleet.EvRebalance
	EventDrain     = fleet.EvDrain
	EventRevive    = fleet.EvRevive
	EventResume    = fleet.EvResume
)

// Routing policies for ClusterConfig.Policy.
const (
	// RouteFirstFit admits on the first machine (in Add order) that
	// accepts the container.
	RouteFirstFit = fleet.FirstFit
	// RouteLeastLoaded admits on the machine with the lowest node
	// utilization that accepts.
	RouteLeastLoaded = fleet.LeastLoaded
	// RouteBestPredicted previews the container on every machine and
	// admits where the trained predictor promises the highest
	// performance.
	RouteBestPredicted = fleet.BestPredicted
)

// Machine health states for ClusterBackendStats.Health and the health
// API. Healthy machines accept admissions; suspect ones (missed probes)
// keep their tenants but stop receiving new ones; dead ones receive no
// calls at all — their tenants are failed over and only Revive readmits
// them.
const (
	ClusterHealthy = fleet.Healthy
	ClusterSuspect = fleet.Suspect
	ClusterDead    = fleet.Dead
)

// ClusterPolicyByName resolves the CLI-style policy names ("first-fit",
// "least-loaded", "best-predicted").
func ClusterPolicyByName(name string) (ClusterPolicy, bool) {
	return fleet.PolicyByName(name)
}

// InDomain labels a machine with a failure domain at Add time (a rack, a
// zone — any unit of correlated failure). Domain labels feed the
// ClusterConfig.SpreadDomains routing preference (replicas of one
// workload land in distinct domains while room exists) and the
// per-domain slice of Stats.
func InDomain(domain string) ClusterAddOption { return fleet.InDomain(domain) }

// NewCluster builds an empty cluster; add machines with Add.
func NewCluster(cfg ClusterConfig) *Cluster {
	return &Cluster{f: fleet.New(cfg)}
}

// Add registers an Engine under a unique machine name, optionally
// labeling it with a failure domain (InDomain). The Engine should carry
// trained (or registered) predictors for the container sizes the cluster
// will serve; untrained sizes simply fail admission on that machine and
// routing falls through to the others. Machines start healthy.
func (c *Cluster) Add(name string, e *Engine, opts ...ClusterAddOption) error {
	return c.f.Add(name, e, opts...)
}

// Engine returns the Engine registered under name.
func (c *Cluster) Engine(name string) (*Engine, bool) {
	b, ok := c.f.Backend(name)
	if !ok {
		return nil, false
	}
	return b.(*Engine), true
}

// Names returns the machine names in Add order.
func (c *Cluster) Names() []string { return c.f.Names() }

// Len returns the number of containers currently served cluster-wide.
func (c *Cluster) Len() int { return c.f.Len() }

// Place admits one container onto the cluster, routed per the configured
// policy; when a machine rejects (full, untrained size), routing falls
// through to the next candidate. It fails with ErrFleetFull — carrying
// every machine's rejection — when no machine admits the container.
func (c *Cluster) Place(ctx context.Context, w Workload, vcpus int) (*ClusterAssignment, error) {
	return c.f.Place(ctx, w, vcpus)
}

// Release evicts a container by its fleet-wide ID (ClusterAssignment.ID),
// wherever it currently runs. Unknown IDs fail with ErrUnknownContainer.
func (c *Cluster) Release(ctx context.Context, id int) error {
	return c.f.Release(ctx, id)
}

// Rebalance runs one fleet-wide re-packing pass under a budgetSeconds
// migration-time budget: each machine's own intra-machine rebalance
// first, then consolidation — tenants of machines utilized below
// ClusterConfig.DrainBelow (and of draining machines, regardless of
// utilization) move onto busier machines as fast-mechanism copies. A
// cross-machine move is committed only if it fits the remaining budget;
// an intra-machine pass is started only while budget remains, but its
// cost is known only afterwards, so the final intra pass may overshoot
// (see ClusterReport.TotalSeconds vs BudgetSeconds). On error the report
// of work already committed is returned alongside it.
func (c *Cluster) Rebalance(ctx context.Context, budgetSeconds float64) (*ClusterReport, error) {
	return c.f.Rebalance(ctx, budgetSeconds)
}

// Drain closes the named machine for admissions and rehomes every tenant
// it serves onto the remaining machines (unbudgeted). Tenants nothing else
// can host stay, reported via an error wrapping ErrFleetFull; the machine
// stays draining either way. Resume reopens it; Remove detaches it once
// empty.
func (c *Cluster) Drain(ctx context.Context, name string) (*ClusterReport, error) {
	return c.f.Drain(ctx, name)
}

// Resume reopens a drained machine for admissions.
func (c *Cluster) Resume(name string) error { return c.f.Resume(name) }

// Remove detaches an empty machine from the cluster (ErrBackendNotEmpty
// if it still serves tenants — Drain first).
func (c *Cluster) Remove(name string) error { return c.f.Remove(name) }

// Assignments snapshots every container served cluster-wide in ascending
// fleet-ID order. Tenants stranded on a dead machine are included with
// their last recorded assignment — a machine death never drops a record
// from the snapshot.
func (c *Cluster) Assignments() []ClusterAssignment { return c.f.Assignments() }

// Stats aggregates the cluster's admission counters, migration spend,
// per-machine occupancy (health state included) and per-failure-domain
// occupancy. Dead machines contribute no capacity until revived.
func (c *Cluster) Stats() ClusterStats { return c.f.Stats() }

// HealthOf returns the named machine's health state; ok is false for
// machines the cluster is not serving.
func (c *Cluster) HealthOf(name string) (ClusterHealth, bool) { return c.f.HealthOf(name) }

// Heartbeat records one answered liveness probe: the machine's miss count
// resets and a suspect machine returns to healthy. Dead machines stay
// dead (ErrBackendDown) until Revive.
func (c *Cluster) Heartbeat(name string) (ClusterHealth, error) { return c.f.Heartbeat(name) }

// MissProbe records one missed probe deadline and advances the health
// state machine: ClusterHealthConfig.SuspectAfter consecutive misses
// close the machine for admissions, DeadAfter declare it dead — which
// triggers the automatic failover pass, whose report is returned. The
// error then wraps ErrNoHealthyBackend if any tenant was left stranded.
func (c *Cluster) MissProbe(ctx context.Context, name string) (ClusterHealth, *ClusterReport, error) {
	return c.f.MissProbe(ctx, name)
}

// Fail declares a machine dead immediately — crash injection, or an
// operator acting on out-of-band knowledge — and runs the automatic
// failover pass, rehoming its tenants onto the healthy remainder within
// ClusterHealthConfig.FailoverBudgetSeconds. Tenants that cannot be
// rehomed are reported stranded (error wraps ErrNoHealthyBackend) and
// stay on the cluster's books for retry.
func (c *Cluster) Fail(ctx context.Context, name string) (*ClusterReport, error) {
	return c.f.Fail(ctx, name)
}

// Failover manually retries recovery for a dead machine's stranded
// tenants under a fresh budget (non-positive = unbudgeted). Capacity may
// have freed since the automatic pass ran.
func (c *Cluster) Failover(ctx context.Context, name string, budgetSeconds float64) (*ClusterReport, error) {
	return c.f.Failover(ctx, name, budgetSeconds)
}

// Revive readmits a dead machine once it is reachable again, first
// fencing its stale books: every engine-side record the cluster no
// longer maps there (tenants failed over in the meantime) is released,
// so the rejoining machine frees capacity containers now running
// elsewhere. Returns the number of fenced records.
func (c *Cluster) Revive(ctx context.Context, name string) (int, error) {
	return c.f.Revive(ctx, name)
}

// Subscribe opens a bounded subscription to the cluster's event feed
// (admissions, releases, moves, health transitions, pass summaries). The
// ring holds up to buf events; a subscriber that falls behind loses its
// oldest events — counted, never blocking the admission path. Close the
// subscription when done.
func (c *Cluster) Subscribe(buf int) *ClusterSubscription { return c.f.Subscribe(buf) }

// Fleet exposes the underlying fleet for serving layers (the wire daemon)
// that operate on it directly.
func (c *Cluster) Fleet() *fleet.Fleet { return c.f }

// Monitor builds a health monitor that drives the state machine from
// periodic liveness probes — deterministic on a simulation clock
// (SimTimers) or live on the wall clock (WallTimers). Start it with
// ClusterMonitor.Start; a machine that stops answering rides
// healthy→suspect→dead and its tenants fail over automatically.
func (c *Cluster) Monitor(timers TimerSource, cfg ClusterMonitorConfig) (*ClusterMonitor, error) {
	return c.f.Monitor(timers, cfg)
}
