package numaplace

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/workloads"
)

// trainedEngine builds a quick Engine on m with a predictor trained for
// the given container size.
func trainedEngine(t *testing.T, ctx context.Context, m Machine, vcpus int) *Engine {
	t.Helper()
	eng := quickEngine(m)
	ws := append(PaperWorkloads(), workloads.CorpusFrom(10, 3, []string{"flat", "bw", "lat"})...)
	ds, err := eng.Collect(ctx, ws, vcpus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(ctx, ds); err != nil {
		t.Fatal(err)
	}
	return eng
}

// testCluster builds a heterogeneous AMD+Intel cluster with both engines
// trained for 16-vCPU containers.
func testCluster(t *testing.T, ctx context.Context, cfg ClusterConfig) *Cluster {
	t.Helper()
	cl := NewCluster(cfg)
	if err := cl.Add("amd-0", trainedEngine(t, ctx, AMD(), 16)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add("intel-0", trainedEngine(t, ctx, Intel(), 16)); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestClusterHeterogeneousServing(t *testing.T) {
	ctx := context.Background()
	cl := testCluster(t, ctx, ClusterConfig{Policy: RouteBestPredicted})
	wt, _ := WorkloadByName("WTbtree")

	// Fill the fleet: admissions route across both machines until neither
	// can host another container.
	var admitted []*ClusterAssignment
	backends := map[string]int{}
	for {
		a, err := cl.Place(ctx, wt, 16)
		if err != nil {
			if !errors.Is(err, ErrFleetFull) {
				t.Fatalf("Place err = %v, want ErrFleetFull at capacity", err)
			}
			break
		}
		admitted = append(admitted, a)
		backends[a.Backend]++
		if len(admitted) > 12 {
			t.Fatal("runaway admission")
		}
	}
	if len(admitted) < 3 {
		t.Fatalf("fleet admitted %d containers, want >= 3", len(admitted))
	}
	if len(backends) != 2 {
		t.Fatalf("admissions used backends %v, want both machines", backends)
	}
	// BestPredicted on an empty fleet starts on the machine with the
	// higher predicted performance; the faster Intel cores should win the
	// first admission.
	if admitted[0].Backend != "intel-0" {
		t.Errorf("first admission on %s, want intel-0 (highest predicted perf)", admitted[0].Backend)
	}

	st := cl.Stats()
	if st.Tenants != len(admitted) || st.Utilization <= 0 {
		t.Fatalf("stats %+v inconsistent with %d admissions", st, len(admitted))
	}
	if got := cl.Assignments(); len(got) != len(admitted) {
		t.Fatalf("Assignments() = %d, want %d", len(got), len(admitted))
	}

	// Drain one machine: its tenants rehome onto the other if it has
	// room, or the drain reports the stranded remainder; either way the
	// fleet keeps serving and every fleet ID stays valid.
	rep, err := cl.Drain(ctx, "amd-0")
	if err != nil && !errors.Is(err, ErrFleetFull) {
		t.Fatalf("Drain: %v", err)
	}
	for _, mv := range rep.Moves {
		if mv.From != "amd-0" || mv.To != "intel-0" || mv.Seconds <= 0 {
			t.Fatalf("drain move %+v, want amd-0 -> intel-0 with positive migration cost", mv)
		}
	}
	for _, a := range admitted {
		if err := cl.Release(ctx, a.ID); err != nil {
			t.Fatalf("release fleet ID %d after drain: %v", a.ID, err)
		}
	}
	if cl.Len() != 0 {
		t.Fatalf("%d tenants left after releasing all", cl.Len())
	}
	if err := cl.Remove("amd-0"); err != nil {
		t.Fatalf("Remove of drained empty machine: %v", err)
	}
	if got := cl.Names(); len(got) != 1 || got[0] != "intel-0" {
		t.Fatalf("names = %v, want [intel-0]", got)
	}

	// Untrained container sizes are rejected fleet-wide with the causes
	// joined in.
	if _, err := cl.Place(ctx, wt, 8); !errors.Is(err, ErrFleetFull) || !errors.Is(err, ErrUntrained) {
		t.Errorf("Place(8 vCPUs) err = %v, want ErrFleetFull wrapping ErrUntrained", err)
	}
}

func TestClusterRebalanceBudget(t *testing.T) {
	ctx := context.Background()
	cl := testCluster(t, ctx, ClusterConfig{Policy: RouteFirstFit, DrainBelow: 0.9})
	wt, _ := WorkloadByName("WTbtree")

	// One tenant on each machine (first admission fills amd-0 partially;
	// place a second and release the first so only the second's machine
	// keeps a tenant — then admit once more).
	a1, err := cl.Place(ctx, wt, 16)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cl.Place(ctx, wt, 16)
	if err != nil {
		t.Fatal(err)
	}

	// Zero budget: the pass examines but commits no cross-machine moves
	// and runs no intra passes.
	rep, err := cl.Rebalance(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != 0 || rep.TotalSeconds != 0 {
		t.Fatalf("zero-budget pass spent %g s on %d moves", rep.TotalSeconds, len(rep.Moves))
	}

	// A generous budget lets the fleet consolidate the emptier machine
	// onto the busier one (DrainBelow 0.9 treats both as candidates).
	rep, err = cl.Rebalance(ctx, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSeconds > 1e6 {
		t.Fatalf("pass overspent the budget: %g s", rep.TotalSeconds)
	}
	for _, mv := range rep.Moves {
		if mv.Seconds <= 0 {
			t.Fatalf("cross-machine move %+v without migration cost", mv)
		}
	}
	// Fleet IDs survive any moves.
	for _, id := range []int{a1.ID, a2.ID} {
		if err := cl.Release(ctx, id); err != nil {
			t.Fatalf("release %d after rebalance: %v", id, err)
		}
	}
}

// TestClusterConcurrentPlace drives concurrent admissions and releases
// across the cluster's backends; under -race it guards the fleet/engine
// lock interplay (cluster lock strictly before engine locks).
func TestClusterConcurrentPlace(t *testing.T) {
	ctx := context.Background()
	cl := testCluster(t, ctx, ClusterConfig{Policy: RouteLeastLoaded})
	wt, _ := WorkloadByName("WTbtree")

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []int
			for i := 0; i < 12; i++ {
				if a, err := cl.Place(ctx, wt, 16); err == nil {
					mine = append(mine, a.ID)
				} else if !errors.Is(err, ErrFleetFull) {
					t.Errorf("Place: %v", err)
					return
				}
				if len(mine) > 1 {
					if err := cl.Release(ctx, mine[0]); err != nil {
						t.Errorf("Release: %v", err)
						return
					}
					mine = mine[1:]
				}
			}
			for _, id := range mine {
				if err := cl.Release(ctx, id); err != nil {
					t.Errorf("Release: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := cl.Rebalance(ctx, 30); err != nil {
				t.Errorf("Rebalance: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if cl.Len() != 0 {
		t.Fatalf("%d tenants leaked", cl.Len())
	}
	for _, b := range cl.Stats().Backends {
		if b.FreeNodes != b.TotalNodes {
			t.Fatalf("machine %s holds %d/%d nodes after all releases", b.Name, b.FreeNodes, b.TotalNodes)
		}
	}
}

// TestClusterFailover exercises the crash path end to end on real
// Engines: machine death rehomes tenants without losing a record, stats
// surface health and domains, and Revive fences the stale books.
func TestClusterFailover(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(ClusterConfig{Policy: RouteFirstFit, SpreadDomains: true})
	if err := cl.Add("amd-0", trainedEngine(t, ctx, AMD(), 16), InDomain("rack-0")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add("intel-0", trainedEngine(t, ctx, Intel(), 16), InDomain("rack-1")); err != nil {
		t.Fatal(err)
	}
	wt, _ := WorkloadByName("WTbtree")

	// First-fit would stack both replicas on amd-0; the domain spread
	// pushes the second onto the other rack.
	a1, err := cl.Place(ctx, wt, 16)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cl.Place(ctx, wt, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Backend != "amd-0" || a2.Backend != "intel-0" {
		t.Fatalf("replicas on %s/%s, want amd-0/intel-0 (domain spread)", a1.Backend, a2.Backend)
	}

	before := cl.Assignments()
	rep, err := cl.Fail(ctx, "amd-0")
	if err != nil && !errors.Is(err, ErrNoHealthyBackend) {
		t.Fatalf("Fail: %v", err)
	}
	if got, want := len(rep.Moves)+rep.Stranded, 1; got != want {
		t.Fatalf("failover accounted for %d tenants, want %d (report %+v)", got, want, rep)
	}
	if h, _ := cl.HealthOf("amd-0"); h != ClusterDead {
		t.Fatalf("health after Fail = %v, want dead", h)
	}

	// Record conservation: the fleet-wide ID set is unchanged.
	after := cl.Assignments()
	if len(after) != len(before) {
		t.Fatalf("tenant records %d -> %d across failover", len(before), len(after))
	}
	for i := range before {
		if after[i].ID != before[i].ID {
			t.Fatalf("fleet ID set changed: %v -> %v", before[i].ID, after[i].ID)
		}
	}

	st := cl.Stats()
	if st.Backends[0].Health != ClusterDead || st.Backends[0].FreeNodes != 0 {
		t.Fatalf("dead machine stats = %+v, want dead with capacity written off", st.Backends[0])
	}
	if len(st.Domains) != 2 || st.Domains[0].Dead != 1 {
		t.Fatalf("domain stats = %+v, want rack-0 reporting its dead machine", st.Domains)
	}
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}

	// A heartbeat from the dead machine is refused until Revive fences it.
	if _, err := cl.Heartbeat("amd-0"); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("heartbeat on dead = %v, want ErrBackendDown", err)
	}
	fenced, err := cl.Revive(ctx, "amd-0")
	if err != nil {
		t.Fatal(err)
	}
	if fenced != len(rep.Moves) {
		t.Fatalf("revive fenced %d, want %d (one per rehomed tenant)", fenced, len(rep.Moves))
	}
	if h, _ := cl.HealthOf("amd-0"); h != ClusterHealthy {
		t.Fatalf("health after Revive = %v, want healthy", h)
	}
	eng, _ := cl.Engine("amd-0")
	if used := 8 - eng.FreeNodes().Len(); used != rep.Stranded*2 {
		// Each 16-vCPU container holds 2 AMD nodes; only tenants still
		// mapped here (stranded, kept) may occupy the revived machine.
		t.Fatalf("revived machine has %d nodes in use, want %d", used, rep.Stranded*2)
	}

	// Everything releases cleanly, wherever each tenant ended up.
	for _, a := range cl.Assignments() {
		if err := cl.Release(ctx, a.ID); err != nil {
			t.Fatalf("release %d: %v", a.ID, err)
		}
	}
	if cl.Len() != 0 {
		t.Fatalf("%d tenants leaked after failover round-trip", cl.Len())
	}
}
